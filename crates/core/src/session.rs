//! Debugging sessions: drive the machine under a backend, classify and
//! charge debugger transitions.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dise_asm::AsmError;
use dise_cpu::{
    CpuConfig, Event, ExecError, Executor, ExecutorCheckpoint, ForkConfigError, Machine, RunStats,
    TimingBatch,
};
use dise_engine::EngineError;
use dise_trace::TraceError;

use crate::backend::BackendImpl;
use crate::task::SessionTask;
use crate::{Application, BackendKind, TransitionStats, WatchExpr, WatchState, Watchpoint};

/// Functional session passes driven since process start (one per driven
/// `Executor` run: lone sessions, timing batches, and shared observer
/// passes each count once). See [`functional_passes`].
pub(crate) static FUNCTIONAL_PASSES: AtomicU64 = AtomicU64::new(0);

/// Total functional session passes executed by this process — one per
/// [`Session`] run, one per [`run_session_batch`] (however many timing
/// configurations it accounts), and one per [`ObserverBatch`] run
/// (however many watchpoint sets × backends × timing configurations
/// share it). Undebugged baselines are not counted.
///
/// This is instrumentation for the execution-count assertions that
/// prove grids share functional passes instead of re-executing per
/// cell; compare *deltas*, as the counter is process-global.
pub fn functional_passes() -> u64 {
    FUNCTIONAL_PASSES.load(Ordering::Relaxed)
}

/// Program images assembled-and-loaded into a machine since process
/// start (one per session established through any entry point; the
/// denominator the checkpoint/fork economy shrinks). See
/// [`image_loads`].
pub(crate) static IMAGE_LOADS: AtomicU64 = AtomicU64::new(0);

/// Copy-on-write machine forks taken since process start (one per
/// [`run_perturbing_group`] sub-batch). See [`checkpoint_forks`].
pub(crate) static CHECKPOINT_FORKS: AtomicU64 = AtomicU64::new(0);

/// Total program images assembled and loaded into a fresh machine by
/// this process — one per [`Session`], [`run_session_batch`] and
/// [`ObserverBatch`], and exactly **one** per [`run_perturbing_group`]
/// however many sub-batches fork from it. Undebugged baselines are not
/// counted. Like [`functional_passes`], this is instrumentation for
/// execution-count pins; compare deltas.
pub fn image_loads() -> u64 {
    IMAGE_LOADS.load(Ordering::Relaxed)
}

/// Total copy-on-write machine forks taken by this process — one per
/// [`run_perturbing_group`] sub-batch (a K-sub-batch group costs 1
/// image load + K forks where it used to cost K loads). Compare
/// deltas.
pub fn checkpoint_forks() -> u64 {
    CHECKPOINT_FORKS.load(Ordering::Relaxed)
}

/// Errors establishing or running a debugging session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DebugError {
    /// Assembly of the (possibly transformed) application failed.
    Asm(AsmError),
    /// DISE production installation failed.
    Engine(EngineError),
    /// The chosen backend cannot implement the requested watchpoints —
    /// the paper's "no experiment" bars (e.g. INDIRECT under virtual
    /// memory).
    Unsupported {
        /// Which backend.
        backend: &'static str,
        /// Why.
        reason: String,
    },
    /// The watchpoint specification itself is ill-formed under *every*
    /// backend — e.g. a conditional `Range` watchpoint, whose non-scalar
    /// value has no defined comparison against the predicate constant.
    /// Rejected up front so the session cannot silently never fire.
    InvalidWatchpoint {
        /// Why.
        reason: String,
    },
    /// A cross-configuration fork was requested from a template that had
    /// already run ([`Executor::fork_with_config`] shares pre-run
    /// templates only — see [`ForkConfigError`]).
    Fork(ForkConfigError),
    /// A persistent `Exec` trace was rejected: stale (fingerprint
    /// mismatch), corrupt (CRC/framing), truncated, unreadable, or the
    /// wrong format version. Replays fail loudly here rather than ever
    /// replaying silently wrong — see [`dise_trace::TraceError`] for
    /// the per-class breakdown.
    Trace(TraceError),
}

impl fmt::Display for DebugError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DebugError::Asm(e) => write!(f, "assembly failed: {e}"),
            DebugError::Engine(e) => write!(f, "production installation failed: {e}"),
            DebugError::Unsupported { backend, reason } => {
                write!(f, "{backend} cannot implement the watchpoints: {reason}")
            }
            DebugError::InvalidWatchpoint { reason } => {
                write!(f, "invalid watchpoint: {reason}")
            }
            DebugError::Fork(e) => write!(f, "cross-configuration fork failed: {e}"),
            DebugError::Trace(e) => write!(f, "trace store rejected: {e}"),
        }
    }
}

impl std::error::Error for DebugError {}

impl From<AsmError> for DebugError {
    fn from(e: AsmError) -> DebugError {
        DebugError::Asm(e)
    }
}

impl From<TraceError> for DebugError {
    fn from(e: TraceError) -> DebugError {
        DebugError::Trace(e)
    }
}

impl From<ForkConfigError> for DebugError {
    fn from(e: ForkConfigError) -> DebugError {
        DebugError::Fork(e)
    }
}

/// Results of a debugging session.
#[derive(Clone, PartialEq, Debug)]
pub struct SessionReport {
    /// Machine-level statistics (cycles include debugger stalls).
    pub run: RunStats,
    /// Transition taxonomy counts.
    pub transitions: TransitionStats,
    /// Terminal execution error, if the application misbehaved.
    pub error: Option<ExecError>,
    /// Static code size of the image that ran (bytes) — grows under
    /// binary rewriting.
    pub text_bytes: u64,
}

impl SessionReport {
    /// Execution time normalised to an undebugged baseline — the y-axis
    /// of Figs. 3–9.
    pub fn overhead_vs(&self, baseline: &RunStats) -> f64 {
        self.run.cycles as f64 / baseline.cycles.max(1) as f64
    }
}

/// Run the application undebugged: the baseline denominator for every
/// experiment.
///
/// # Errors
///
/// Propagates assembly failures.
pub fn run_baseline(app: &Application, cpu: CpuConfig) -> Result<RunStats, DebugError> {
    let prog = app.program()?;
    let mut m = Machine::with_config(&prog, cpu);
    Ok(m.run())
}

/// Run one complete debugging session and return its report — the
/// `Send`-able entry point job-grid runners hand to worker threads
/// (every argument and the result are plain data).
///
/// # Errors
///
/// As [`Session::with_config`].
pub fn run_session(
    app: &Application,
    watchpoints: Vec<Watchpoint>,
    backend: BackendKind,
    cpu: CpuConfig,
) -> Result<SessionReport, DebugError> {
    Ok(Session::with_config(app, watchpoints, backend, cpu)?.run())
}

/// Run one functional pass under `backend` and account it against *all*
/// of `cpus` at once — the single-pass multi-config replay that lets
/// sensitivity sweeps stop paying functional execution per grid cell.
///
/// The functional instruction stream depends only on the application,
/// the watchpoints, the backend and the DISE engine capacities, so
/// every configuration in the batch must agree on
/// [`CpuConfig::engine`]; everything else (widths, windows, cache
/// geometry, penalties, transition costs) is free to vary per entry.
/// Timing-only backend knobs can be folded into the configuration first
/// with [`BackendKind::split_timing`].
///
/// Reports come back in `cpus` order; entry `i` is byte-identical to
/// `run_session(app, watchpoints, backend, cpus[i])` run on its own
/// (enforced by tests and by the batched-vs-unbatched experiment
/// determinism suite in `dise-bench`).
///
/// # Errors
///
/// As [`Session::with_config`]; the error applies to the batch as a
/// whole (support and validity do not depend on timing configuration).
///
/// # Panics
///
/// Panics when the configurations disagree on the DISE engine
/// capacities — such cells are functionally different and must not be
/// batched.
pub fn run_session_batch(
    app: &Application,
    watchpoints: Vec<Watchpoint>,
    backend: BackendKind,
    cpus: &[CpuConfig],
) -> Result<Vec<SessionReport>, DebugError> {
    SessionTask::batch(app, watchpoints, backend, cpus).run_to_completion().into_batch()
}

/// Run a whole *perturbing* cell group — one workload, one watchpoint
/// set, one backend, many engine-configuration sub-batches — off **one**
/// assembled-and-loaded image: the copy-on-write extension of the
/// one-pass economy to the backends that cannot share a functional
/// stream.
///
/// The backend's static work happens once: validation, instantiation,
/// and `build_program` (for binary rewriting, the whole transformed
/// image) run a single time, and the resulting program is loaded into a
/// single warmed template machine. Every sub-batch then *forks* the
/// template — O(page-table) copy-on-write, counted by
/// [`checkpoint_forks`] — under its own engine capacities, clones the
/// post-build backend state, configures, and drives its private
/// functional pass through a [`TimingBatch`] over its timing
/// configurations. A group of K sub-batches therefore costs 1 image
/// load + K forks where K separate [`run_session_batch`] calls cost K
/// loads (pinned by the execution-count suite in `dise-bench`).
///
/// Sub-batch `i` is byte-identical to
/// `run_session_batch(app, watchpoints, backend, &batches[i])` run on
/// its own — the fork is provably invisible (grid determinism and
/// conformance suites run with `DISE_COW_FORK` on and off).
///
/// # Errors
///
/// The outer `Err` is group-wide — invalid watchpoints, an unsupported
/// backend/watchpoint combination, or assembly failure; no sub-batch
/// could run. Per-sub-batch errors (e.g. productions exceeding a
/// sub-batch's engine capacities at `configure`) come back in that
/// sub-batch's slot, exactly as its private `run_session_batch` would
/// report them.
///
/// # Panics
///
/// Panics when the configurations *within* one sub-batch disagree on
/// the DISE engine capacities, as [`run_session_batch`] does.
pub fn run_perturbing_group(
    app: &Application,
    watchpoints: Vec<Watchpoint>,
    backend: BackendKind,
    batches: &[Vec<CpuConfig>],
) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
    SessionTask::perturbing_group(app, watchpoints, backend, batches)
        .run_to_completion()
        .into_group()
}

/// Reject watchpoint specifications that no backend can give meaning
/// to, so they fail loudly at session setup instead of silently never
/// firing (`Condition` compares scalars; a `Range` value is a byte
/// snapshot).
pub(crate) fn validate_watchpoints(wps: &[Watchpoint]) -> Result<(), DebugError> {
    for w in wps {
        if w.condition.is_some() && matches!(w.expr, WatchExpr::Range { .. }) {
            return Err(DebugError::InvalidWatchpoint {
                reason: "a conditional watchpoint needs a scalar expression; a range's value \
                         is a byte snapshot with no defined comparison against the predicate \
                         constant (watch a scalar element instead)"
                    .to_string(),
            });
        }
        if matches!(w.expr, WatchExpr::Range { len: 0, .. }) {
            return Err(DebugError::InvalidWatchpoint {
                reason: "a range watchpoint watches no bytes (len == 0) and could never fire"
                    .to_string(),
            });
        }
    }
    Ok(())
}

/// A session batch sharing **one functional pass per workload**: the
/// generalisation of [`run_session_batch`] (one backend, N timing
/// configurations) to W watchpoint sets × N *observing* backends × M
/// timing configurations each. The scenario key is the application
/// alone — each member carries its **own** watchpoint set, value
/// bookkeeping ([`WatchState`]) and replayable detector, so one `Exec`
/// stream of the unmodified application serves every combination.
///
/// An observing backend (see [`BackendKind::observation_only`]) reads
/// architectural state but never changes what the application fetches
/// or executes — and its watchpoints influence only what the *debugger*
/// traps on, never what the application runs — so the functional stream
/// is exactly the unmodified application's for every (backend,
/// watchpoint set) member, and therefore shareable across all of them.
/// `ObserverBatch` runs the application once and fans every `Exec`
/// record out to each member's detector and timing models; member `i`'s
/// entry `j` is bit-identical to
/// `run_session(app, watchpoints[i], backend[i], cpus[i][j])` run on
/// its own (enforced by the cross-backend conformance suite and the
/// grid determinism tests).
///
/// Perturbing backends (single-stepping, binary rewriting, DISE
/// production injection) are refused at [`ObserverBatch::member`]; they
/// keep their private replay through [`run_session_batch`].
///
/// ```
/// use dise_asm::{parse_asm, Layout};
/// use dise_cpu::CpuConfig;
/// use dise_debug::{Application, BackendKind, ObserverBatch, WatchExpr, Watchpoint};
/// use dise_isa::Width;
///
/// let app = Application::new(parse_asm("
///     start:  la r1, x
///             la r3, y
///             lda r2, 7(zero)
///             stq r2, 0(r1)
///             stq r2, 0(r3)
///             halt
///     .data
///     x: .quad 0
///     y: .quad 7
/// ").unwrap(), Layout::default());
/// let x = app.program()?.symbol("x").unwrap();
/// let y = app.program()?.symbol("y").unwrap();
/// let wx = Watchpoint::new(WatchExpr::Scalar { addr: x, width: Width::Q });
/// let wy = Watchpoint::new(WatchExpr::Scalar { addr: y, width: Width::Q });
///
/// let mut batch = ObserverBatch::new(&app);
/// batch.member(BackendKind::VirtualMemory, vec![wx], vec![CpuConfig::default()]);
/// batch.member(BackendKind::hw4(), vec![wy], vec![CpuConfig::default()]);
/// let results = batch.run()?; // one execution, two backends, two watchpoint sets
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].as_ref().unwrap()[0].transitions.user, 1, "x changed");
/// assert_eq!(results[1].as_ref().unwrap()[0].transitions.user, 0, "y stayed 7");
/// # Ok::<(), dise_debug::DebugError>(())
/// ```
pub struct ObserverBatch<'a> {
    app: &'a Application,
    members: Vec<ObserverMember>,
}

/// One member of an [`ObserverBatch`]: an observing backend, its own
/// watchpoint set, and the timing configurations to account it under.
struct ObserverMember {
    backend: BackendKind,
    watchpoints: Vec<Watchpoint>,
    cpus: Vec<CpuConfig>,
}

impl<'a> ObserverBatch<'a> {
    /// An empty batch over one application (the per-workload scenario).
    pub fn new(app: &'a Application) -> ObserverBatch<'a> {
        ObserverBatch { app, members: Vec::new() }
    }

    /// Add an observing backend with its own watchpoint set, to be
    /// accounted under each of `cpus`.
    ///
    /// The DISE engine capacities in `cpus` are irrelevant here — no
    /// member installs productions, so unlike [`run_session_batch`] the
    /// configurations need not agree on [`CpuConfig::engine`].
    /// Watchpoint validation and backend admission are per-member and
    /// happen at [`ObserverBatch::run`], so one member's ill-formed or
    /// unsupported set never blocks the others.
    ///
    /// # Panics
    ///
    /// Panics when `backend` is perturbing: sharing a pass with a
    /// backend that changes the executed stream would corrupt every
    /// member's results.
    pub fn member(
        &mut self,
        backend: BackendKind,
        watchpoints: Vec<Watchpoint>,
        cpus: Vec<CpuConfig>,
    ) -> &mut ObserverBatch<'a> {
        assert!(
            backend.observation_only(),
            "{backend:?} perturbs the functional stream and must replay privately \
             (run_session_batch)"
        );
        self.members.push(ObserverMember { backend, watchpoints, cpus });
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members have been added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Run the single shared functional pass and scatter it: one result
    /// per member, in [`ObserverBatch::member`] order; a member's
    /// reports are in its `cpus` order.
    ///
    /// # Errors
    ///
    /// The outer `Err` is scenario-wide — the application failed to
    /// assemble, so no member could run. Everything watchpoint-shaped is
    /// per-member: an ill-formed set ([`DebugError::InvalidWatchpoint`])
    /// or an unimplementable one ([`DebugError::Unsupported`], e.g.
    /// INDIRECT under virtual memory) fails that member alone, exactly
    /// as if each had been run on its own, and the rest still share the
    /// pass.
    pub fn run(self) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
        let members =
            self.members.into_iter().map(|m| (m.backend, m.watchpoints, m.cpus)).collect();
        SessionTask::observer(self.app, members).run_to_completion().into_observe()
    }

    /// Like [`ObserverBatch::run`], but record the shared functional
    /// pass to `trace` as it is driven. The file appears atomically on
    /// completion and can serve any number of later
    /// [`ObserverBatch::run_from_trace`] calls.
    ///
    /// # Errors
    ///
    /// Exactly as [`ObserverBatch::run`], plus [`DebugError::Trace`]
    /// when the trace file cannot be created.
    pub fn run_recorded(
        self,
        trace: &std::path::Path,
    ) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
        let members =
            self.members.into_iter().map(|m| (m.backend, m.watchpoints, m.cpus)).collect();
        SessionTask::observer_recorded(self.app, members, trace).run_to_completion().into_observe()
    }

    /// Like [`ObserverBatch::run`], but drive every member from the
    /// stored `Exec` stream at `trace` instead of executing the
    /// application: **zero** functional passes, zero image loads,
    /// bit-identical results (enforced by the conformance suite).
    ///
    /// # Errors
    ///
    /// Exactly as [`ObserverBatch::run`], plus [`DebugError::Trace`]
    /// when the trace is stale (fingerprint mismatch), corrupt,
    /// truncated, the wrong version, or unreadable.
    pub fn run_from_trace(
        self,
        trace: &std::path::Path,
    ) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
        let members =
            self.members.into_iter().map(|m| (m.backend, m.watchpoints, m.cpus)).collect();
        SessionTask::observer_replay(self.app, members, trace).run_to_completion().into_observe()
    }
}

///// The session loop shared by [`Session`] and [`run_session_batch`]:
/// one functional pass through `exec` and `backend`, fanned out to
/// every timing model in `timings`. Returns the terminal execution
/// error, if any.
///
/// Callers count one functional pass per driven run themselves
/// ([`FUNCTIONAL_PASSES`]) — `drive` may legally be called many times
/// on one session (budgeted stepping, checkpoint rings) without the
/// session executing more than one pass.
pub(crate) fn drive(
    exec: &mut Executor,
    timings: &mut TimingBatch,
    backend: &mut dyn BackendImpl,
    watch: &mut WatchState,
    stats: &mut TransitionStats,
    max_instructions: u64,
) -> Option<ExecError> {
    let mut error = None;
    let mut n = 0u64;
    while !exec.is_halted() && n < max_instructions {
        let e = exec.step();
        n += 1;
        timings.consume(&e);
        if let Some(t) = backend.observe(&e, exec, watch, stats) {
            stats.count(t);
            if t.is_spurious() {
                // A spurious transition is a full application→debugger→
                // application round trip perceived as latency; user
                // transitions are masked (zero cost). Each model charges
                // its own configured cost.
                timings.debugger_stall();
            }
        }
        if let Some(Event::Error(err)) = e.event {
            error = Some(err);
        }
    }
    error
}

/// A shared, lock-guarded cache of undebugged baseline runs, so
/// concurrent experiment jobs can all normalise against the same
/// denominator without re-running it or serialising on `&mut self`.
///
/// Keys are caller-chosen (kernel names); a baseline is computed at most
/// once per key, outside the lock, so a slow baseline never blocks
/// lookups of other kernels.
#[derive(Debug, Default)]
pub struct BaselineCache {
    runs: Mutex<HashMap<String, RunStats>>,
}

impl BaselineCache {
    /// An empty cache.
    pub fn new() -> BaselineCache {
        BaselineCache::default()
    }

    /// The baseline statistics for `key`, computing them from `app`
    /// under `cpu` on first use.
    ///
    /// Two threads racing on the same missing key may both compute the
    /// run; the first insertion wins, and both runs are identical (the
    /// simulator is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates assembly failures from the baseline run.
    pub fn get_or_run(
        &self,
        key: &str,
        app: &Application,
        cpu: CpuConfig,
    ) -> Result<RunStats, DebugError> {
        if let Some(stats) = self.runs.lock().expect("baseline cache poisoned").get(key) {
            return Ok(*stats);
        }
        let stats = run_baseline(app, cpu)?;
        Ok(*self
            .runs
            .lock()
            .expect("baseline cache poisoned")
            .entry(key.to_string())
            .or_insert(stats))
    }

    /// Number of distinct baselines cached.
    pub fn len(&self) -> usize {
        self.runs.lock().expect("baseline cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A point-in-time snapshot of a whole debugging session: the machine
/// (registers, PC, copy-on-write memory, DISE engine, decode caches),
/// the cycle-accounting models, the backend's runtime state, the
/// watchpoint value snapshots, and the transition statistics.
///
/// Capturing is cheap — machine memory is shared copy-on-write with the
/// live session, so a checkpoint costs O(page-table), not O(footprint).
/// Resuming from a checkpoint ([`Session::resume_from`]) rewinds *all*
/// of that state together, so a resumed session re-executes
/// byte-identically: the same [`Exec`](dise_cpu::Exec) stream, the same
/// statistics, the same report.
pub struct MachineCheckpoint {
    exec: ExecutorCheckpoint,
    timings: TimingBatch,
    backend: Box<dyn BackendImpl>,
    watch: WatchState,
    stats: TransitionStats,
}

impl Clone for MachineCheckpoint {
    fn clone(&self) -> MachineCheckpoint {
        MachineCheckpoint {
            exec: self.exec.clone(),
            timings: self.timings.clone(),
            backend: self.backend.boxed_clone(),
            watch: self.watch.clone(),
            stats: self.stats,
        }
    }
}

impl MachineCheckpoint {
    /// Dynamic instruction count at which this checkpoint was taken.
    pub fn instructions(&self) -> u64 {
        self.exec.instructions()
    }

    /// PC at which this checkpoint was taken.
    pub fn pc(&self) -> u64 {
        self.exec.pc()
    }
}

/// How many dynamic instructions the checkpoint ring lets pass between
/// automatic snapshots when `DISE_CHECKPOINTS` enables it.
const CHECKPOINT_INTERVAL: u64 = 4096;

/// Parse the `DISE_CHECKPOINTS` knob: the number of periodic
/// checkpoints [`Session`] keeps in its ring while running. Unset,
/// empty, or `0` disables the ring (the default — no cost unless asked
/// for). Anything non-numeric panics loudly rather than silently
/// dropping the feature the user asked for ([`dise_env::env_number`]).
fn checkpoint_ring_from_env() -> usize {
    dise_env::env_number("DISE_CHECKPOINTS", 0)
}

/// An interactive debugging session: an application, a set of
/// watchpoints, and a backend implementing them.
///
/// Internally this is exactly a [`run_session_batch`] of size one: the
/// same loop drives the functional machine and a [`TimingBatch`]
/// holding a single model, so batched and unbatched runs cannot drift
/// apart.
///
/// Sessions are also the repository's time-travel primitive:
/// [`Session::checkpoint`] captures the whole machine copy-on-write,
/// [`Session::resume_from`] rewinds to a capture, and with
/// `DISE_CHECKPOINTS=N` the session keeps a ring of the last `N`
/// periodic checkpoints (every [`CHECKPOINT_INTERVAL`] instructions)
/// while it runs, available through [`Session::checkpoints`].
pub struct Session {
    exec: Executor,
    timings: TimingBatch,
    backend: Box<dyn BackendImpl>,
    watch: WatchState,
    stats: TransitionStats,
    text_bytes: u64,
    error: Option<ExecError>,
    /// The most recent periodic checkpoints, oldest first.
    ring: VecDeque<MachineCheckpoint>,
    ring_capacity: usize,
    /// One functional pass is counted per session however many times it
    /// is driven (budgeted stepping, checkpoint chunking).
    counted: bool,
}

impl Session {
    /// Create a session with the paper's default machine configuration.
    ///
    /// # Errors
    ///
    /// Fails when the backend cannot implement the watchpoints, when
    /// static transformation fails, or when productions exceed the DISE
    /// engine's capacity.
    pub fn new(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
    ) -> Result<Session, DebugError> {
        Session::with_config(app, watchpoints, backend, CpuConfig::default())
    }

    /// Create a session with an explicit machine configuration.
    ///
    /// # Errors
    ///
    /// As [`Session::new`].
    pub fn with_config(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        cpu: CpuConfig,
    ) -> Result<Session, DebugError> {
        validate_watchpoints(&watchpoints)?;
        let mut backend = backend.instantiate();
        let prog = backend.build_program(app, &watchpoints)?;
        let cfg = backend.cpu_config(cpu);
        let mut exec = Executor::from_program(&prog, cfg);
        IMAGE_LOADS.fetch_add(1, Ordering::Relaxed);
        backend.configure(&mut exec, &watchpoints)?;
        let watch = WatchState::new(&watchpoints, exec.mem());
        Ok(Session {
            exec,
            timings: TimingBatch::new(&[cfg]),
            backend,
            watch,
            stats: TransitionStats::default(),
            text_bytes: prog.text_bytes(),
            error: None,
            ring: VecDeque::new(),
            ring_capacity: checkpoint_ring_from_env(),
            counted: false,
        })
    }

    /// Direct access to the machine (for examples that poke at state).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// True once the machine has halted (or faulted).
    pub fn is_halted(&self) -> bool {
        self.exec.is_halted() || self.error.is_some()
    }

    /// Capture the whole session copy-on-write: machine, timing models,
    /// backend state, watchpoint snapshots, statistics. O(page-table),
    /// not O(footprint) — memory pages are shared with the live session
    /// until either side writes them.
    pub fn checkpoint(&self) -> MachineCheckpoint {
        MachineCheckpoint {
            exec: self.exec.checkpoint(),
            timings: self.timings.clone(),
            backend: self.backend.boxed_clone(),
            watch: self.watch.clone(),
            stats: self.stats,
        }
    }

    /// Rewind the session to a checkpoint. Every piece of state —
    /// machine, cycle accounting, backend, watch snapshots, transition
    /// statistics — rolls back together, so continuing from here
    /// re-executes byte-identically to the first pass. Ring entries
    /// taken *after* the resume point are pruned (they describe a future
    /// this timeline may no longer reach).
    pub fn resume_from(&mut self, ck: &MachineCheckpoint) {
        self.exec.restore(&ck.exec);
        self.timings = ck.timings.clone();
        self.backend = ck.backend.boxed_clone();
        self.watch = ck.watch.clone();
        self.stats = ck.stats;
        self.error = None;
        let at = ck.instructions();
        self.ring.retain(|c| c.instructions() <= at);
    }

    /// The periodic checkpoint ring (oldest first). Empty unless the
    /// `DISE_CHECKPOINTS=N` environment knob (or
    /// [`Session::set_checkpoint_ring`]) enabled it before the session
    /// ran.
    pub fn checkpoints(&self) -> impl Iterator<Item = &MachineCheckpoint> {
        self.ring.iter()
    }

    /// Programmatically size the periodic checkpoint ring, overriding
    /// the `DISE_CHECKPOINTS` environment default. `0` disables it;
    /// shrinking evicts oldest-first immediately.
    pub fn set_checkpoint_ring(&mut self, capacity: usize) {
        self.ring_capacity = capacity;
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
    }

    /// Drive the session by at most `budget` further dynamic
    /// instructions, returning `true` while there is more to run.
    /// Repeated calls are byte-identical to one big call — all state
    /// persists across calls — and the whole session still counts as
    /// *one* functional pass. When the checkpoint ring is enabled, the
    /// run is chunked at [`CHECKPOINT_INTERVAL`] boundaries and a
    /// snapshot pushed at each.
    pub fn run_budget(&mut self, budget: u64) -> bool {
        if !self.counted {
            self.counted = true;
            FUNCTIONAL_PASSES.fetch_add(1, Ordering::Relaxed);
        }
        let mut left = budget;
        while left > 0 && !self.is_halted() {
            let chunk = if self.ring_capacity == 0 {
                left
            } else {
                // Distance to the next interval boundary, so snapshots
                // land at the same instruction counts regardless of how
                // the caller slices its budgets.
                let run = CHECKPOINT_INTERVAL - self.exec.instructions() % CHECKPOINT_INTERVAL;
                left.min(run)
            };
            self.error = drive(
                &mut self.exec,
                &mut self.timings,
                self.backend.as_mut(),
                &mut self.watch,
                &mut self.stats,
                chunk,
            );
            left -= chunk.min(left);
            if self.ring_capacity > 0
                && !self.is_halted()
                && self.exec.instructions().is_multiple_of(CHECKPOINT_INTERVAL)
            {
                self.ring.push_back(self.checkpoint());
                while self.ring.len() > self.ring_capacity {
                    self.ring.pop_front();
                }
            }
        }
        !self.is_halted()
    }

    /// The session's report so far, without consuming the session —
    /// cycle accounting is cloned and finalised at the current point.
    /// After the machine halts this equals what [`Session::run`] would
    /// have returned.
    pub fn report(&self) -> SessionReport {
        let run = self.timings.clone().finish().pop().expect("session batch holds one model");
        SessionReport {
            run,
            transitions: self.stats,
            error: self.error,
            text_bytes: self.text_bytes,
        }
    }

    /// Run to completion.
    pub fn run(self) -> SessionReport {
        self.run_limit(u64::MAX)
    }

    /// Run to completion and also hand back the final machine, so
    /// callers can inspect architectural state (used to verify that
    /// debugging does not perturb the application).
    pub fn run_with_state(self) -> (SessionReport, Executor) {
        self.finish(u64::MAX)
    }

    /// Run at most `max_instructions` dynamic instructions.
    pub fn run_limit(self, max_instructions: u64) -> SessionReport {
        self.finish(max_instructions).0
    }

    fn finish(mut self, max_instructions: u64) -> (SessionReport, Executor) {
        self.run_budget(max_instructions);
        (self.report(), self.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendKind, Condition, DiseStrategy, WatchExpr, Watchpoint};
    use dise_asm::{parse_asm, Layout};
    use dise_isa::Width;

    /// A loop that stores a changing value to `watched`, a constant
    /// (silent after the first) to `silent`, and a changing value to
    /// `neighbor` (same page as `watched`, never watched).
    fn app(iters: u32) -> Application {
        let src = format!(
            "start:  la r1, watched
                     la r2, silent
                     la r3, neighbor
                     lda r4, {iters}(zero)
             loop:   .stmt
                     stq r4, 0(r3)      # unwatched neighbor (same page)
                     stq r31, 0(r2)     # silent store to watched quad
                     stq r4, 0(r1)      # changes watched value
                     subq r4, 1, r4
                     bgt r4, loop
                     halt
             .data
             watched:  .quad 0
             silent:   .quad 0
             neighbor: .quad 0
            "
        );
        Application::new(parse_asm(&src).unwrap(), Layout::default())
    }

    fn scalar_wp(app: &Application, sym: &str) -> Watchpoint {
        let addr = app.program().unwrap().symbol(sym).unwrap();
        Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
    }

    /// The grid runners in `dise-bench` ship sessions to worker
    /// threads: everything [`run_session`] consumes or produces, plus
    /// the shared baseline cache, must stay `Send + Sync`.
    #[test]
    fn session_grid_surface_is_send_and_sync() {
        fn send_sync<T: Send + Sync>() {}
        send_sync::<Application>();
        send_sync::<Watchpoint>();
        send_sync::<BackendKind>();
        send_sync::<CpuConfig>();
        send_sync::<SessionReport>();
        send_sync::<DebugError>();
        send_sync::<BaselineCache>();
    }

    #[test]
    fn baseline_cache_computes_each_key_once_across_threads() {
        let a = app(5);
        let cache = BaselineCache::new();
        let runs: Vec<RunStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cache.get_or_run("app", &a, CpuConfig::default()).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1);
        assert!(runs.windows(2).all(|w| w[0] == w[1]), "deterministic baseline");
    }

    #[test]
    fn baseline_runs_clean() {
        let a = app(10);
        let b = run_baseline(&a, CpuConfig::default()).unwrap();
        assert!(b.cycles > 0);
        assert!(b.instructions > 50);
    }

    #[test]
    fn dise_reports_every_change_with_no_spurious_transitions() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.error, None);
        assert_eq!(r.transitions.user, 10, "one change per iteration");
        assert_eq!(r.transitions.spurious_total(), 0);
        assert_eq!(r.run.debugger_stalls, 0);
    }

    #[test]
    fn dise_prunes_silent_stores_in_application() {
        let a = app(10);
        let wp = scalar_wp(&a, "silent");
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        // The handler is called for each store to the watched quad, but
        // the value never changes after initialisation: no transitions.
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_total(), 0);
        assert!(r.transitions.handler_calls >= 10);
    }

    #[test]
    fn virtual_memory_pays_for_page_sharing() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let r = Session::new(&a, vec![wp], BackendKind::VirtualMemory).unwrap().run();
        assert_eq!(r.transitions.user, 10);
        // The neighbor and silent-target stores share the page but do
        // not touch the watched variable: spurious address transitions.
        assert_eq!(r.transitions.spurious_address, 20, "same-page stores");
        assert_eq!(r.run.debugger_stalls, 20);
        assert!(r.run.cycles > 20 * 100_000);
    }

    #[test]
    fn hardware_registers_pay_only_for_silent_stores() {
        let a = app(10);
        let wp = scalar_wp(&a, "silent");
        let r = Session::new(&a, vec![wp], BackendKind::hw4()).unwrap().run();
        // Quad comparators: neighbor stores don't match; stores to the
        // watched quad never change the value → all spurious value.
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_address, 0);
        assert_eq!(r.transitions.spurious_value, 10);
    }

    #[test]
    fn single_stepping_transitions_every_statement() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let r = Session::new(&a, vec![wp], BackendKind::SingleStep).unwrap().run();
        // One statement marker per iteration. The debugger sees each
        // iteration's change at the *next* statement boundary, so the
        // first boundary (nothing changed yet) is spurious and the last
        // change is never observed: 9 user + 1 spurious address.
        assert_eq!(r.transitions.total(), 10);
        assert_eq!(r.transitions.user, 9);
        assert_eq!(r.transitions.spurious_address, 1);
    }

    #[test]
    fn single_stepping_spurious_when_nothing_changes() {
        let a = app(10);
        let wp = scalar_wp(&a, "neighbor");
        // Watch the neighbor but make it the *silent* target: watch a
        // variable the loop never changes.
        let quiet = {
            let addr = a.program().unwrap().symbol("silent").unwrap();
            Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
        };
        let _ = wp;
        let r = Session::new(&a, vec![quiet], BackendKind::SingleStep).unwrap().run();
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_address, 10);
        assert!(r.run.cycles > 10 * 100_000);
    }

    #[test]
    fn conditional_watchpoints_spurious_predicates() {
        let a = app(10);
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::conditional(
            WatchExpr::Scalar { addr, width: Width::Q },
            Condition::equals(u64::MAX), // never true
        );
        // Hardware registers: every change transitions, predicate always
        // false → spurious predicate transitions.
        let r = Session::new(&a, vec![wp], BackendKind::hw4()).unwrap().run();
        assert_eq!(r.transitions.user, 0);
        assert_eq!(r.transitions.spurious_predicate, 10);

        // DISE evaluates the predicate in the generated function: no
        // transitions at all.
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.transitions.total(), 0);
        assert_eq!(r.run.debugger_stalls, 0);
    }

    #[test]
    fn binary_rewrite_matches_dise_semantics_with_bigger_text() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        let dise = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        let bw = Session::new(&a, vec![wp], BackendKind::BinaryRewrite).unwrap().run();
        assert_eq!(bw.error, None);
        assert_eq!(bw.transitions.user, dise.transitions.user);
        assert_eq!(bw.transitions.spurious_total(), 0);
        assert!(
            bw.text_bytes > dise.text_bytes,
            "rewriting bloats the static image: {} vs {}",
            bw.text_bytes,
            dise.text_bytes
        );
    }

    #[test]
    fn all_dise_strategies_agree_on_user_events() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        for strategy in [
            DiseStrategy::default(),
            DiseStrategy::match_address_call(false),
            DiseStrategy::evaluate_inline(true),
            DiseStrategy::evaluate_inline(false),
            DiseStrategy::match_address_value(true),
            DiseStrategy::match_address_value(false),
            DiseStrategy::bloom(false),
            DiseStrategy::bloom(true),
            DiseStrategy { multithreaded_calls: true, ..DiseStrategy::default() },
            DiseStrategy { protect_debugger: true, ..DiseStrategy::default() },
        ] {
            let r = Session::new(&a, vec![wp], BackendKind::Dise(strategy)).unwrap().run();
            assert_eq!(r.error, None, "{strategy:?}");
            assert_eq!(r.transitions.user, 10, "{strategy:?}");
            assert_eq!(r.transitions.spurious_total(), 0, "{strategy:?}");
        }
    }

    #[test]
    fn indirect_watchpoint_works_under_dise_only() {
        let src = "start:  la r1, p
                           ldq r2, 0(r1)      # r2 = &target
                           lda r3, 5(zero)
                           stq r3, 0(r2)      # writes *p
                           la r4, other
                           ldq r5, 0(r4)
                           stq r5, 0(r1)      # repoint p to other
                           lda r3, 9(zero)
                           ldq r2, 0(r1)
                           stq r3, 0(r2)      # writes new *p
                           halt
                   .data
                   target: .quad 1
                   other_t:.quad 2
                   p:      .quad 0x01000000   # &target
                   other:  .quad 0x01000008   # &other_t
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let p = a.program().unwrap().symbol("p").unwrap();
        let wp = Watchpoint::new(WatchExpr::Indirect { ptr: p, width: Width::Q });

        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.error, None);
        // *p changes twice: 1→5 at target, then (after repointing,
        // which re-references) 2→9 at other_t.
        assert_eq!(r.transitions.user, 2);
        assert_eq!(r.transitions.spurious_total(), 0);

        // Virtual memory and hardware registers must decline.
        assert!(matches!(
            Session::new(&a, vec![wp], BackendKind::VirtualMemory),
            Err(DebugError::Unsupported { .. })
        ));
        assert!(matches!(
            Session::new(&a, vec![wp], BackendKind::hw4()),
            Err(DebugError::Unsupported { .. })
        ));

        // The comparator organisation supports indirection (the
        // debugger reprograms the target pair on pointer writes). Its
        // repoint semantics are gdb's, not DISE's: repointing p changes
        // the *expression's* value 5→2, which the comparators report as
        // a third user transition where DISE's generated function
        // re-references silently.
        let cmp = Session::new(&a, vec![wp], BackendKind::DiseComparators).unwrap().run();
        assert_eq!(cmp.error, None);
        assert_eq!(cmp.transitions.user, 3, "{:?}", cmp.transitions);
        assert_eq!(cmp.transitions.spurious_total(), 0);
    }

    #[test]
    fn range_watchpoint_under_dise() {
        let src = "start:  la r1, arr
                           lda r2, 3(zero)
                           stq r2, 8(r1)     # arr[1] = 3
                           stq r2, 8(r1)     # silent
                           stq r2, 64(r1)    # outside the range
                           halt
                   .data
                   arr:    .space 32
                   beyond: .space 64
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let base = a.program().unwrap().symbol("arr").unwrap();
        let wp = Watchpoint::new(WatchExpr::Range { base, len: 32 });
        let r = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(r.error, None);
        assert_eq!(r.transitions.user, 1, "one real change inside the range");
        assert_eq!(r.transitions.spurious_total(), 0);
    }

    /// Regression: an 8-byte store that starts on the *last byte* of a
    /// range watchpoint straddles the range end — its quad also holds
    /// unwatched tail bytes. Changing only those tail bytes must not
    /// surface as a user transition, and changing the last watched byte
    /// still must.
    #[test]
    fn range_end_straddling_store_is_not_a_false_transition() {
        // Range [arr, arr+28): the last quad (arr+24) holds 4 unwatched
        // tail bytes (arr+28..arr+32). Both stq's start at arr+27 — the
        // last watched byte — and spill 7 bytes past the end.
        let src = "start:  la r1, arr
                           la r2, tailpat
                           ldq r3, 0(r2)
                           stq r3, 27(r1)   # only unwatched tail bytes change
                           la r2, change
                           ldq r3, 0(r2)
                           stq r3, 27(r1)   # now the last watched byte changes
                           halt
                   .data
                   arr:     .space 32
                   spill:   .space 8
                   tailpat: .quad 0x2B2B2B2B2B2B2B00
                   change:  .quad 0x2B2B2B2B2B2B2B11
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let base = a.program().unwrap().symbol("arr").unwrap();
        assert_eq!(base % 8, 0, "test assumes a quad-aligned array base");
        let wp = Watchpoint::new(WatchExpr::Range { base, len: 28 });

        let dise = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(dise.error, None);
        assert_eq!(
            dise.transitions.user, 1,
            "only the second store changes a watched byte: {:?}",
            dise.transitions
        );
        assert_eq!(dise.transitions.spurious_total(), 0);

        // Virtual memory agrees on what the user sees; its extra
        // classification work confirms the first store was a same-page
        // write that left the watched bytes alone.
        let vm = Session::new(&a, vec![wp], BackendKind::VirtualMemory).unwrap().run();
        assert_eq!(vm.transitions.user, 1);
        assert_eq!(vm.transitions.spurious_value, 1, "{:?}", vm.transitions);
    }

    /// Regression: an unaligned 8-byte store can span *two* quads of a
    /// range; a change that lands only in the second quad must still be
    /// reported (the handler used to inspect only the quad holding the
    /// store's first byte).
    #[test]
    fn range_interior_straddling_store_is_detected() {
        // Quad-aligned range [arr, arr+16). The stq at arr+4 writes
        // zeros over arr+4..arr+8 (silent) and 0x11s over
        // arr+8..arr+12 — the change is entirely in the second quad.
        let src = "start:  la r1, arr
                           la r2, pat
                           ldq r3, 0(r2)
                           stq r3, 4(r1)
                           halt
                   .data
                   arr:     .space 32
                   pat:     .quad 0x1111111100000000
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let base = a.program().unwrap().symbol("arr").unwrap();
        assert_eq!(base % 8, 0, "test assumes a quad-aligned array base");
        let wp = Watchpoint::new(WatchExpr::Range { base, len: 16 });

        let dise = Session::new(&a, vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(dise.error, None);
        assert_eq!(dise.transitions.user, 1, "{:?}", dise.transitions);
        assert_eq!(dise.transitions.spurious_total(), 0);

        let vm = Session::new(&a, vec![wp], BackendKind::VirtualMemory).unwrap().run();
        assert_eq!(vm.transitions.user, 1, "VM agrees: {:?}", vm.transitions);
    }

    #[test]
    fn multiple_watchpoints_serial_and_bloom() {
        let a = app(6);
        let p = a.program().unwrap();
        let wps: Vec<Watchpoint> = ["watched", "silent", "neighbor"]
            .iter()
            .map(|s| {
                Watchpoint::new(WatchExpr::Scalar { addr: p.symbol(s).unwrap(), width: Width::Q })
            })
            .collect();
        for kind in [
            BackendKind::dise_default(),
            BackendKind::Dise(DiseStrategy::bloom(false)),
            BackendKind::Dise(DiseStrategy::bloom(true)),
        ] {
            let r = Session::new(&a, wps.clone(), kind).unwrap().run();
            assert_eq!(r.error, None, "{kind:?}");
            // watched and neighbor each change 6 times; a store may
            // change both expressions' values but transitions are
            // per-store: 12 changing stores.
            assert_eq!(r.transitions.user, 12, "{kind:?}");
            assert_eq!(r.transitions.spurious_total(), 0, "{kind:?}");
        }
    }

    #[test]
    fn protection_catches_wild_store() {
        // The application computes an address inside the debugger's
        // region and stores to it.
        let src = "start:  la r1, watched
                           lda r2, 1(zero)
                           stq r2, 0(r1)     # legitimate watched store
                           ldq r3, 0(r4)     # r4=0: read a zero
                           halt
                   .data
                   watched: .quad 0
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q });
        let strategy = DiseStrategy { protect_debugger: true, ..DiseStrategy::default() };
        let r = Session::new(&a, vec![wp], BackendKind::Dise(strategy)).unwrap().run();
        assert_eq!(r.error, None);
        assert_eq!(r.transitions.user, 1);
        assert_eq!(r.transitions.protection_violations, 0, "no wild stores here");
    }

    #[test]
    fn conditional_range_watchpoints_are_rejected_up_front() {
        // `Condition::holds` is false for every byte-snapshot value, so
        // `watch arr if arr == k` could never fire under any backend —
        // reject it loudly at setup instead (on every backend, batched
        // or not).
        let a = app(5);
        let base = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::conditional(WatchExpr::Range { base, len: 16 }, Condition::equals(3));
        for kind in [
            BackendKind::dise_default(),
            BackendKind::VirtualMemory,
            BackendKind::hw4(),
            BackendKind::SingleStep,
            BackendKind::BinaryRewrite,
        ] {
            assert!(
                matches!(
                    Session::new(&a, vec![wp], kind),
                    Err(DebugError::InvalidWatchpoint { .. })
                ),
                "{kind:?} must reject a conditional range watchpoint"
            );
        }
        assert!(matches!(
            run_session_batch(&a, vec![wp], BackendKind::dise_default(), &[CpuConfig::default()]),
            Err(DebugError::InvalidWatchpoint { .. })
        ));
        // An unconditional range is still fine.
        let plain = Watchpoint::new(WatchExpr::Range { base, len: 16 });
        assert!(Session::new(&a, vec![plain], BackendKind::dise_default()).is_ok());
    }

    #[test]
    fn zero_length_range_watchpoints_are_rejected_up_front() {
        // A `len == 0` range watches no bytes; before validation it
        // reached the DISE backend's boundary-mask arithmetic (a shift
        // by 64) instead of failing cleanly.
        let a = app(5);
        let base = a.program().unwrap().symbol("watched").unwrap();
        let wp = Watchpoint::new(WatchExpr::Range { base, len: 0 });
        for kind in [BackendKind::dise_default(), BackendKind::VirtualMemory] {
            assert!(
                matches!(
                    Session::new(&a, vec![wp], kind),
                    Err(DebugError::InvalidWatchpoint { .. })
                ),
                "{kind:?} must reject a zero-length range watchpoint"
            );
        }
    }

    /// A batch of size one must be indistinguishable from the unbatched
    /// session, report for report, across backends with and without
    /// spurious transitions.
    #[test]
    fn batch_of_one_matches_unbatched_session() {
        let a = app(8);
        let cpu = CpuConfig::default();
        for (kind, backend) in [
            ("watched", BackendKind::dise_default()),
            ("watched", BackendKind::VirtualMemory),
            ("silent", BackendKind::hw4()),
            ("watched", BackendKind::SingleStep),
        ] {
            let wp = scalar_wp(&a, kind);
            let lone = run_session(&a, vec![wp], backend, cpu).unwrap();
            let batch = run_session_batch(&a, vec![wp], backend, &[cpu]).unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].run, lone.run, "{backend:?}");
            assert_eq!(batch[0].transitions, lone.transitions, "{backend:?}");
            assert_eq!(batch[0].error, lone.error, "{backend:?}");
            assert_eq!(batch[0].text_bytes, lone.text_bytes, "{backend:?}");
        }
    }

    /// Every batch entry must equal its own unbatched run: per-config
    /// predictor, cache and window state is fully isolated, and each
    /// entry pays its own transition cost.
    #[test]
    fn batch_entries_match_their_unbatched_runs_and_stay_isolated() {
        let a = app(8);
        let wp = scalar_wp(&a, "watched");
        let cheap = CpuConfig { debugger_transition_cost: 5_000, ..CpuConfig::default() };
        let narrow = CpuConfig { width: 1, commit_width: 1, ..CpuConfig::default() };
        let cpus = [CpuConfig::default(), cheap, narrow, CpuConfig::default()];
        // Virtual memory: plenty of spurious transitions to charge.
        let batch = run_session_batch(&a, vec![wp], BackendKind::VirtualMemory, &cpus).unwrap();
        assert_eq!(batch.len(), cpus.len());
        for (cpu, got) in cpus.iter().zip(&batch) {
            let lone = run_session(&a, vec![wp], BackendKind::VirtualMemory, *cpu).unwrap();
            assert_eq!(got.run, lone.run, "batch entry diverged for {cpu:?}");
        }
        assert_eq!(batch[0].run, batch[3].run, "identical configs agree despite neighbours");
        assert!(batch[1].run.cycles < batch[0].run.cycles, "cheaper transitions are visible");
        assert!(batch[2].run.cycles > batch[0].run.cycles, "narrow machine is slower");
    }

    /// Fig. 8's two cells (multithreaded DISE calls on/off) differ only
    /// in timing: after `split_timing` they share one functional pass.
    #[test]
    fn split_timing_folds_multithreading_into_the_batch() {
        let a = app(8);
        let wp = scalar_wp(&a, "watched");
        let cpu = CpuConfig::default();
        let mt = BackendKind::Dise(DiseStrategy {
            multithreaded_calls: true,
            ..DiseStrategy::default()
        });
        let (plain_split, plain_cpu) = BackendKind::dise_default().split_timing(cpu);
        let (mt_split, mt_cpu) = mt.split_timing(cpu);
        assert_eq!(plain_split, mt_split, "only the timing knob differed");
        assert!(mt_cpu.multithreaded_dise_calls && !plain_cpu.multithreaded_dise_calls);

        let batch = run_session_batch(&a, vec![wp], plain_split, &[plain_cpu, mt_cpu]).unwrap();
        let plain = run_session(&a, vec![wp], BackendKind::dise_default(), cpu).unwrap();
        let with_mt = run_session(&a, vec![wp], mt, cpu).unwrap();
        assert_eq!(batch[0].run, plain.run);
        assert_eq!(batch[1].run, with_mt.run);
        assert!(with_mt.run.dise_flushes < plain.run.dise_flushes);
    }

    #[test]
    fn empty_batch_is_empty() {
        let a = app(5);
        let wp = scalar_wp(&a, "watched");
        let out = run_session_batch(&a, vec![wp], BackendKind::dise_default(), &[]).unwrap();
        assert!(out.is_empty());
    }

    /// The tentpole contract: an observer batch fanning one functional
    /// pass out to both observing backends × several timing
    /// configurations reproduces every per-backend, per-config replay
    /// bit for bit — while executing once instead of six times.
    #[test]
    fn observer_batch_matches_private_replays_bit_for_bit() {
        let a = app(8);
        let wp = scalar_wp(&a, "watched");
        let cheap = CpuConfig { debugger_transition_cost: 5_000, ..CpuConfig::default() };
        let narrow = CpuConfig { width: 1, commit_width: 1, ..CpuConfig::default() };
        let cpus = vec![CpuConfig::default(), cheap, narrow];

        // (Exact functional-pass counts are asserted by the dedicated
        // execution-count test in `dise-bench`, where the process-global
        // counter is not racing other tests.)
        let mut batch = ObserverBatch::new(&a);
        batch.member(BackendKind::VirtualMemory, vec![wp], cpus.clone());
        batch.member(BackendKind::hw4(), vec![wp], cpus.clone());
        batch.member(BackendKind::DiseComparators, vec![wp], cpus.clone());
        assert_eq!(batch.len(), 3);
        let results = batch.run().unwrap();

        for (backend, member) in
            [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::DiseComparators]
                .into_iter()
                .zip(results)
        {
            let reports = member.unwrap();
            assert_eq!(reports.len(), cpus.len());
            for (cpu, got) in cpus.iter().zip(reports) {
                let lone = run_session(&a, vec![wp], backend, *cpu).unwrap();
                assert_eq!(got.run, lone.run, "{backend:?} diverged for {cpu:?}");
                assert_eq!(got.transitions, lone.transitions, "{backend:?}");
                assert_eq!(got.error, lone.error, "{backend:?}");
                assert_eq!(got.text_bytes, lone.text_bytes, "{backend:?}");
            }
        }
    }

    /// An unsupported member (INDIRECT under virtual memory) fails
    /// alone; the rest of the batch still runs and still matches its
    /// private replay.
    #[test]
    fn observer_batch_isolates_unsupported_members() {
        let src = "start:  la r1, p
                           ldq r2, 0(r1)
                           lda r3, 5(zero)
                           stq r3, 0(r2)
                           halt
                   .data
                   target: .quad 1
                   p:      .quad 0x01000000
                  ";
        let a = Application::new(parse_asm(src).unwrap(), Layout::default());
        let p = a.program().unwrap().symbol("p").unwrap();
        let target = a.program().unwrap().symbol("target").unwrap();
        let indirect = Watchpoint::new(WatchExpr::Indirect { ptr: p, width: Width::Q });
        let scalar = Watchpoint::new(WatchExpr::Scalar { addr: target, width: Width::Q });

        // VM and HW decline indirect watchpoints — per member, while the
        // comparator member (which supports indirection via debugger-side
        // retargeting) still runs and matches its private replay.
        let mut batch = ObserverBatch::new(&a);
        batch.member(BackendKind::VirtualMemory, vec![indirect], vec![CpuConfig::default()]);
        batch.member(BackendKind::hw4(), vec![indirect], vec![CpuConfig::default()]);
        batch.member(BackendKind::DiseComparators, vec![indirect], vec![CpuConfig::default()]);
        let results = batch.run().unwrap();
        assert!(matches!(results[0], Err(DebugError::Unsupported { .. })));
        assert!(matches!(results[1], Err(DebugError::Unsupported { .. })));
        let cmp = results[2].as_ref().unwrap();
        let lone =
            run_session(&a, vec![indirect], BackendKind::DiseComparators, CpuConfig::default())
                .unwrap();
        assert_eq!(cmp[0].run, lone.run);
        assert_eq!(cmp[0].transitions, lone.transitions);

        // A watchable scalar keeps the supported members alive: a
        // four-register backend takes it, a zero-register backend's
        // overflow falls back to page protection and agrees with its
        // own private replay.
        let mut batch = ObserverBatch::new(&a);
        batch.member(
            BackendKind::HardwareRegisters { registers: 0 },
            vec![scalar],
            vec![CpuConfig::default()],
        );
        batch.member(BackendKind::hw4(), vec![scalar], vec![CpuConfig::default()]);
        let results = batch.run().unwrap();
        for (backend, member) in
            [BackendKind::HardwareRegisters { registers: 0 }, BackendKind::hw4()]
                .into_iter()
                .zip(results)
        {
            let lone = run_session(&a, vec![scalar], backend, CpuConfig::default()).unwrap();
            let got = &member.unwrap()[0];
            assert_eq!(got.run, lone.run, "{backend:?}");
            assert_eq!(got.transitions, lone.transitions, "{backend:?}");
        }
    }

    /// The tentpole's new axis: members with *different watchpoint
    /// sets* share the one pass, each with its own detector and
    /// `WatchState`, bit-identical to their private replays — including
    /// a set that drives spurious transitions next to one that stays
    /// silent, so per-member stall accounting cannot leak across sets.
    #[test]
    fn observer_batch_shares_one_pass_across_watchpoint_sets() {
        let a = app(8);
        let sets = [
            vec![scalar_wp(&a, "watched")],
            vec![scalar_wp(&a, "silent")],
            vec![scalar_wp(&a, "watched"), scalar_wp(&a, "neighbor")],
        ];
        let cheap = CpuConfig { debugger_transition_cost: 5_000, ..CpuConfig::default() };
        let cpus = vec![CpuConfig::default(), cheap];
        let backends =
            [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::DiseComparators];

        let mut batch = ObserverBatch::new(&a);
        let mut expect = Vec::new();
        for set in &sets {
            for backend in backends {
                batch.member(backend, set.clone(), cpus.clone());
                expect.push((backend, set.clone()));
            }
        }
        assert_eq!(batch.len(), 9);
        let results = batch.run().unwrap();
        for ((backend, set), member) in expect.into_iter().zip(results) {
            let reports = member.unwrap();
            assert_eq!(reports.len(), cpus.len());
            for (cpu, got) in cpus.iter().zip(reports) {
                let lone = run_session(&a, set.clone(), backend, *cpu).unwrap();
                assert_eq!(got.run, lone.run, "{backend:?}/{set:?} diverged for {cpu:?}");
                assert_eq!(got.transitions, lone.transitions, "{backend:?}/{set:?}");
                assert_eq!(got.error, lone.error, "{backend:?}/{set:?}");
                assert_eq!(got.text_bytes, lone.text_bytes, "{backend:?}/{set:?}");
            }
        }
    }

    /// The comparator organisation traps exactly on watched-byte
    /// overlap: user transitions match DISE, silent stores cost a
    /// spurious *value* round trip, and spurious *address* transitions
    /// are structurally impossible (no page sharing, no partial quads).
    #[test]
    fn dise_comparators_are_byte_exact_observers() {
        let a = app(10);
        let watched =
            Session::new(&a, vec![scalar_wp(&a, "watched")], BackendKind::DiseComparators)
                .unwrap()
                .run();
        assert_eq!(watched.error, None);
        assert_eq!(watched.transitions.user, 10, "one change per iteration");
        assert_eq!(watched.transitions.spurious_address, 0, "byte-exact: no page sharing cost");
        assert_eq!(watched.transitions.spurious_total(), 0, "{:?}", watched.transitions);

        let silent = Session::new(&a, vec![scalar_wp(&a, "silent")], BackendKind::DiseComparators)
            .unwrap()
            .run();
        assert_eq!(silent.transitions.user, 0);
        assert_eq!(silent.transitions.spurious_value, 10, "silent stores still trap");
        assert_eq!(silent.transitions.spurious_address, 0);
    }

    #[test]
    #[should_panic(expected = "perturbs the functional stream")]
    fn observer_batch_refuses_perturbing_backends() {
        let a = app(5);
        let wp = scalar_wp(&a, "watched");
        let mut batch = ObserverBatch::new(&a);
        batch.member(BackendKind::dise_default(), vec![wp], vec![CpuConfig::default()]);
    }

    #[test]
    fn observer_batch_with_no_members_is_empty() {
        let a = app(5);
        let batch = ObserverBatch::new(&a);
        assert!(batch.is_empty());
        assert!(batch.run().unwrap().is_empty());
    }

    /// Unlike `run_session_batch`, observer members need not agree on
    /// DISE engine capacities: no member installs productions, so the
    /// engine is functionally inert and cells differing only in engine
    /// configuration may still share the pass.
    #[test]
    fn observer_batch_tolerates_mismatched_engine_configs() {
        let a = app(6);
        let wp = scalar_wp(&a, "watched");
        let mut small = CpuConfig::default();
        small.engine.replacement_entries = 64;
        let mut batch = ObserverBatch::new(&a);
        batch.member(BackendKind::VirtualMemory, vec![wp], vec![CpuConfig::default(), small]);
        let reports = batch.run().unwrap().pop().unwrap().unwrap();
        let lone = run_session(&a, vec![wp], BackendKind::VirtualMemory, small).unwrap();
        assert_eq!(reports[1].run, lone.run);
    }

    /// Every `DebugError::InvalidWatchpoint` rejection path, through
    /// every session construction surface: a conditional range (no
    /// defined scalar comparison) and a zero-length range (watches no
    /// bytes) must be rejected by `Session::with_config`, `run_session`,
    /// `run_session_batch` and `ObserverBatch::run` alike, before any
    /// backend work happens. In an observer batch the rejection is
    /// per-member: a valid co-member still runs and still matches its
    /// private replay.
    #[test]
    fn invalid_watchpoints_rejected_on_every_entry_point() {
        let a = app(5);
        let base = a.program().unwrap().symbol("watched").unwrap();
        let invalid = [
            ("conditional range", {
                Watchpoint::conditional(WatchExpr::Range { base, len: 16 }, Condition::equals(3))
            }),
            ("zero-length range", Watchpoint::new(WatchExpr::Range { base, len: 0 })),
        ];
        for (what, wp) in invalid {
            for kind in [
                BackendKind::dise_default(),
                BackendKind::VirtualMemory,
                BackendKind::hw4(),
                BackendKind::SingleStep,
                BackendKind::BinaryRewrite,
                BackendKind::DiseComparators,
            ] {
                assert!(
                    matches!(
                        Session::with_config(&a, vec![wp], kind, CpuConfig::default()),
                        Err(DebugError::InvalidWatchpoint { .. })
                    ),
                    "{what}: Session::with_config under {kind:?}"
                );
                assert!(
                    matches!(
                        run_session(&a, vec![wp], kind, CpuConfig::default()),
                        Err(DebugError::InvalidWatchpoint { .. })
                    ),
                    "{what}: run_session under {kind:?}"
                );
                assert!(
                    matches!(
                        run_session_batch(&a, vec![wp], kind, &[CpuConfig::default()]),
                        Err(DebugError::InvalidWatchpoint { .. })
                    ),
                    "{what}: run_session_batch under {kind:?}"
                );
            }
            let valid = scalar_wp(&a, "watched");
            let mut batch = ObserverBatch::new(&a);
            batch.member(BackendKind::VirtualMemory, vec![wp], vec![CpuConfig::default()]);
            batch.member(BackendKind::VirtualMemory, vec![valid], vec![CpuConfig::default()]);
            let results = batch.run().unwrap();
            assert!(
                matches!(results[0], Err(DebugError::InvalidWatchpoint { .. })),
                "{what}: ObserverBatch::run rejects the member"
            );
            let lone =
                run_session(&a, vec![valid], BackendKind::VirtualMemory, CpuConfig::default())
                    .unwrap();
            let got = &results[1].as_ref().unwrap()[0];
            assert_eq!(got.run, lone.run, "{what}: the valid co-member still runs");
            assert_eq!(got.transitions, lone.transitions, "{what}");
        }
    }

    #[test]
    #[should_panic(expected = "agree on the functional")]
    fn batch_rejects_mismatched_engine_configs() {
        let a = app(5);
        let wp = scalar_wp(&a, "watched");
        let mut small = CpuConfig::default();
        small.engine.replacement_entries = 64;
        let _ = run_session_batch(
            &a,
            vec![wp],
            BackendKind::dise_default(),
            &[CpuConfig::default(), small],
        );
    }

    #[test]
    fn unsupported_combinations_are_reported() {
        let a = app(5);
        let p = a.program().unwrap();
        let range =
            Watchpoint::new(WatchExpr::Range { base: p.symbol("watched").unwrap(), len: 16 });
        assert!(matches!(
            Session::new(&a, vec![range], BackendKind::hw4()),
            Err(DebugError::Unsupported { .. })
        ));
        let two = vec![scalar_wp(&a, "watched"), scalar_wp(&a, "silent")];
        assert!(matches!(
            Session::new(&a, two, BackendKind::Dise(DiseStrategy::evaluate_inline(true))),
            Err(DebugError::Unsupported { .. })
        ));
    }

    /// The copy-on-write tentpole contract: a perturbing group forking
    /// every sub-batch from one loaded template is bit-identical to the
    /// sub-batches' private `run_session_batch` calls — across all three
    /// perturbing backends, including binary rewriting, whose *image*
    /// itself is the product of the shared `build_program`.
    #[test]
    fn perturbing_group_matches_private_batches_bit_for_bit() {
        let a = app(8);
        let wp = scalar_wp(&a, "watched");
        let cheap = CpuConfig { debugger_transition_cost: 5_000, ..CpuConfig::default() };
        let narrow = CpuConfig { width: 1, commit_width: 1, ..CpuConfig::default() };
        let mut small = CpuConfig::default();
        small.engine.replacement_entries = 64;
        let batches = vec![
            vec![CpuConfig::default(), cheap],
            vec![narrow],
            vec![small, CpuConfig { debugger_transition_cost: 5_000, ..small }],
        ];
        for backend in
            [BackendKind::SingleStep, BackendKind::BinaryRewrite, BackendKind::dise_default()]
        {
            let grouped = run_perturbing_group(&a, vec![wp], backend, &batches).unwrap();
            assert_eq!(grouped.len(), batches.len());
            for (cpus, got) in batches.iter().zip(grouped) {
                let private = run_session_batch(&a, vec![wp], backend, cpus).unwrap();
                let got = got.unwrap();
                assert_eq!(got.len(), private.len(), "{backend:?}");
                for (g, p) in got.iter().zip(&private) {
                    assert_eq!(g.run, p.run, "{backend:?} forked run diverged");
                    assert_eq!(g.transitions, p.transitions, "{backend:?}");
                    assert_eq!(g.error, p.error, "{backend:?}");
                    assert_eq!(g.text_bytes, p.text_bytes, "{backend:?}");
                }
            }
        }
    }

    /// Engine-capacity failures are per sub-batch: the sub-batch whose
    /// configuration cannot hold the productions errs in its own slot
    /// (exactly as its private batch would), while its siblings off the
    /// same template still run and still match.
    #[test]
    fn perturbing_group_isolates_sub_batch_errors() {
        let a = app(6);
        let wp = scalar_wp(&a, "watched");
        let mut tiny = CpuConfig::default();
        tiny.engine.pattern_entries = 0;
        let batches = vec![vec![CpuConfig::default()], vec![tiny], vec![]];
        let grouped =
            run_perturbing_group(&a, vec![wp], BackendKind::dise_default(), &batches).unwrap();
        assert!(matches!(grouped[1], Err(DebugError::Engine(_))), "{:?}", grouped[1]);
        assert!(grouped[2].as_ref().unwrap().is_empty(), "empty sub-batch yields no reports");
        let lone =
            run_session(&a, vec![wp], BackendKind::dise_default(), CpuConfig::default()).unwrap();
        let got = &grouped[0].as_ref().unwrap()[0];
        assert_eq!(got.run, lone.run, "the healthy sibling still matches its private run");
        assert_eq!(got.transitions, lone.transitions);
    }

    /// Time travel: capture mid-run, finish, rewind, finish again — the
    /// two futures are byte-identical, and both equal a never-rewound
    /// run. All state (machine, cycle accounting, backend, watch
    /// snapshots, transition counts) rolls back together.
    #[test]
    fn session_resumes_from_checkpoint_byte_identically() {
        let a = app(10);
        let wp = scalar_wp(&a, "watched");
        for backend in [BackendKind::dise_default(), BackendKind::VirtualMemory] {
            let reference = run_session(&a, vec![wp], backend, CpuConfig::default()).unwrap();
            let mut s = Session::with_config(&a, vec![wp], backend, CpuConfig::default()).unwrap();
            assert!(s.run_budget(40), "machine must still be live at the capture point");
            let ck = s.checkpoint();
            assert_eq!(ck.instructions(), 40);
            s.run_budget(u64::MAX);
            assert!(s.is_halted());
            let first = s.report();
            assert_eq!(first.run, reference.run, "{backend:?} chunked run diverged");
            assert_eq!(first.transitions, reference.transitions, "{backend:?}");

            s.resume_from(&ck);
            assert!(!s.is_halted(), "rewound below the halt");
            assert_eq!(s.executor().instructions(), 40);
            s.run_budget(u64::MAX);
            let second = s.report();
            assert_eq!(second.run, first.run, "{backend:?} replay diverged after rewind");
            assert_eq!(second.transitions, first.transitions, "{backend:?}");
            assert_eq!(second.error, first.error, "{backend:?}");
        }
    }

    /// The periodic ring: snapshots land every `CHECKPOINT_INTERVAL`
    /// instructions regardless of how the caller slices its budgets,
    /// capacity evicts oldest-first, and resuming prunes entries from
    /// the abandoned future.
    #[test]
    fn checkpoint_ring_snapshots_periodically_and_prunes_on_resume() {
        // A long-enough workload to cross several interval boundaries.
        let a = app(4000);
        let wp = scalar_wp(&a, "watched");
        let mut s =
            Session::with_config(&a, vec![wp], BackendKind::dise_default(), CpuConfig::default())
                .unwrap();
        s.set_checkpoint_ring(3);
        // Slice the budget unevenly: boundaries must not depend on it.
        while s.run_budget(2_500) {}
        let at: Vec<u64> = s.checkpoints().map(|c| c.instructions()).collect();
        assert_eq!(at.len(), 3, "ring capacity bounds retained snapshots");
        assert!(at.iter().all(|n| n.is_multiple_of(CHECKPOINT_INTERVAL)), "{at:?}");
        assert!(at.windows(2).all(|w| w[1] == w[0] + CHECKPOINT_INTERVAL), "{at:?}");

        let resume = s.checkpoints().nth(1).unwrap().clone();
        let mid = resume.instructions();
        s.resume_from(&resume);
        assert_eq!(s.executor().instructions(), mid);
        assert!(
            s.checkpoints().all(|c| c.instructions() <= mid),
            "entries from the abandoned future are pruned"
        );
        while s.run_budget(10_000) {}
        let replay = s.report();
        let reference =
            run_session(&a, vec![wp], BackendKind::dise_default(), CpuConfig::default()).unwrap();
        assert_eq!(replay.run, reference.run, "ringed, rewound run still byte-identical");
        assert_eq!(replay.transitions, reference.transitions);
    }
}
