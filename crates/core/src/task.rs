//! Resumable session execution: every run-to-completion entry point in
//! [`crate::session`], refactored into a [`SessionTask`] state machine
//! that can be driven one bounded slice at a time.
//!
//! A task is a *continuation*: [`SessionTask::poll`] advances it by at
//! most `budget` dynamic instructions and reports
//! [`Step::Yielded`] (more to do), [`Step::Blocked`] (parked on an
//! external gate), or [`Step::Done`] (the finished [`TaskOutput`]).
//! Because the simulator is deterministic and PR 7 proved budgeted
//! stepping slicing-invariant, a task polled under *any* sequence of
//! budgets produces the byte-identical `Exec` stream, reports, and
//! instrumentation counters as one `u64::MAX` run — which is what lets
//! [`crate::Scheduler`] multiplex thousands of sessions over a few
//! worker threads without perturbing a single result (the grid
//! determinism suites in `dise-bench` hold it to that).
//!
//! The legacy entry points ([`crate::run_session_batch`],
//! [`crate::run_perturbing_group`], [`crate::ObserverBatch::run`]) are
//! now thin wrappers over [`SessionTask::run_to_completion`], so the
//! scheduled and unscheduled paths share one implementation and cannot
//! drift apart.
//!
//! ## Lifecycle
//!
//! ```text
//! spawn ──▶ Pending ──(first poll: admission)──▶ Running ──▶ Done
//!              │                                    ▲
//!              └── gate set ──▶ Blocked ──unblock───┘
//! ```
//!
//! Admission — watchpoint validation, backend instantiation,
//! `build_program`, the image load — is *lazy*: it happens at the first
//! granted slice, not at construction. A spawned-but-unstarted task is
//! just plain data (an [`Application`] and some configurations), which
//! is how a scheduler holds >1000 concurrently in-flight sessions
//! cheaply on a single core.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dise_asm::Program;
use dise_cpu::{
    chunk_capacity_from_env, program_fingerprint, CpuConfig, Event, Exec, ExecChunk, ExecError,
    Executor, RunStats, TimingBatch, TraceReader, TraceWriter,
};
use dise_mem::Memory;

use crate::backend::{BackendImpl, ObserverImpl};
use crate::session::{
    drive, validate_watchpoints, DebugError, SessionReport, CHECKPOINT_FORKS, FUNCTIONAL_PASSES,
    IMAGE_LOADS,
};
use crate::trace::{TRACE_RECORDS, TRACE_REPLAYS};
use crate::{
    Application, BackendKind, Transition, TransitionStats, WatchFilter, WatchState, Watchpoint,
};

/// Chunks dispatched by the slice-based observer fan-out, live and
/// replayed alike (a dirty record dispatches as its own chunk of one).
pub(crate) static FANOUT_CHUNKS: AtomicU64 = AtomicU64::new(0);
/// Per-member skip decisions: the member's [`WatchFilter`] proved no
/// buffered store touched a watched byte (and the chunk carried no
/// event), so `observe` never ran and only the bulk timing slice was
/// charged.
pub(crate) static FANOUT_CHUNKS_SKIPPED: AtomicU64 = AtomicU64::new(0);
/// Per-member scan decisions: the chunk summary intersected the
/// member's filter (or carried an event), so the member scanned the
/// records one by one. `skipped + scanned == members × chunks`, always.
pub(crate) static FANOUT_CHUNKS_SCANNED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of chunks dispatched by the observer fan-out.
pub fn fanout_chunks() -> u64 {
    FANOUT_CHUNKS.load(Ordering::Relaxed)
}

/// Process-wide count of per-member whole-chunk skips (filter miss).
pub fn fanout_chunks_skipped() -> u64 {
    FANOUT_CHUNKS_SKIPPED.load(Ordering::Relaxed)
}

/// Process-wide count of per-member record-by-record chunk scans.
pub fn fanout_chunks_scanned() -> u64 {
    FANOUT_CHUNKS_SCANNED.load(Ordering::Relaxed)
}

/// What one [`SessionTask::poll`] call reports.
#[derive(Debug)]
pub enum Step {
    /// The budget ran out with work remaining; poll again to continue.
    Yielded(TaskProgress),
    /// The task is parked behind a gate ([`SessionTask::block`] /
    /// `Scheduler::spawn_after`) and consumed none of the budget; it
    /// must be unblocked before it can run.
    Blocked(String),
    /// The task finished; it must not be polled again.
    Done(TaskOutput),
}

/// Virtual progress of a yielded task — the scheduler's priority key
/// (least-progressed first, so long sessions cannot starve short ones).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskProgress {
    /// Dynamic instructions this task has retired so far, across every
    /// machine it has driven (a perturbing group accumulates over its
    /// sub-batch forks).
    pub instructions: u64,
}

/// The finished result of a [`SessionTask`], shaped exactly like the
/// run-to-completion entry point the task wraps.
#[derive(Debug)]
pub enum TaskOutput {
    /// From [`SessionTask::batch`] / [`SessionTask::session`]: what
    /// [`crate::run_session_batch`] returns.
    Batch(Result<Vec<SessionReport>, DebugError>),
    /// From [`SessionTask::perturbing_group`]: what
    /// [`crate::run_perturbing_group`] returns.
    Group(Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError>),
    /// From [`SessionTask::observer`]: what
    /// [`crate::ObserverBatch::run`] returns.
    Observe(Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError>),
}

impl TaskOutput {
    /// Unwrap a [`TaskOutput::Batch`].
    ///
    /// # Panics
    ///
    /// Panics when the task was not constructed by
    /// [`SessionTask::batch`] or [`SessionTask::session`] — a shape
    /// mismatch is a caller bug, never data-dependent.
    pub fn into_batch(self) -> Result<Vec<SessionReport>, DebugError> {
        match self {
            TaskOutput::Batch(r) => r,
            other => panic!("expected a batch task output, got {}", other.shape()),
        }
    }

    /// Unwrap a [`TaskOutput::Group`].
    ///
    /// # Panics
    ///
    /// Panics when the task was not constructed by
    /// [`SessionTask::perturbing_group`].
    pub fn into_group(self) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
        match self {
            TaskOutput::Group(r) => r,
            other => panic!("expected a perturbing-group task output, got {}", other.shape()),
        }
    }

    /// Unwrap a [`TaskOutput::Observe`].
    ///
    /// # Panics
    ///
    /// Panics when the task was not constructed by
    /// [`SessionTask::observer`].
    pub fn into_observe(self) -> Result<Vec<Result<Vec<SessionReport>, DebugError>>, DebugError> {
        match self {
            TaskOutput::Observe(r) => r,
            other => panic!("expected an observer task output, got {}", other.shape()),
        }
    }

    fn shape(&self) -> &'static str {
        match self {
            TaskOutput::Batch(_) => "batch",
            TaskOutput::Group(_) => "perturbing group",
            TaskOutput::Observe(_) => "observer",
        }
    }
}

/// A resumable debugging-session continuation: one of the three
/// run-to-completion shapes ([`crate::run_session_batch`],
/// [`crate::run_perturbing_group`], [`crate::ObserverBatch`]) driven a
/// bounded number of instructions per [`SessionTask::poll`].
pub struct SessionTask {
    gate: Option<String>,
    progress: u64,
    state: State,
}

enum State {
    PendingBatch(BatchSpec),
    Batch(Pass),
    PendingGroup(GroupSpec),
    Group(Box<GroupRun>),
    PendingObserve(ObserveSpec),
    Observe(ObserveRun),
    PendingReplay(ReplaySpec),
    Replay(Box<ReplayRun>),
    Finished,
}

struct BatchSpec {
    app: Application,
    watchpoints: Vec<Watchpoint>,
    backend: BackendKind,
    cpus: Vec<CpuConfig>,
}

struct GroupSpec {
    app: Application,
    watchpoints: Vec<Watchpoint>,
    backend: BackendKind,
    batches: Vec<Vec<CpuConfig>>,
}

struct ObserveSpec {
    app: Application,
    members: Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)>,
    /// Record the shared functional pass to this trace file as a side
    /// effect ([`SessionTask::observer_recorded`]).
    record: Option<PathBuf>,
}

struct ReplaySpec {
    app: Application,
    members: Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)>,
    trace: PathBuf,
}

/// One live functional pass: the machine, its fanned-out timing models,
/// the backend, and the debugger bookkeeping — everything
/// [`crate::session::drive`] needs, owned so it survives between polls.
struct Pass {
    exec: Executor,
    timings: TimingBatch,
    backend: Box<dyn BackendImpl>,
    watch: WatchState,
    stats: TransitionStats,
    error: Option<ExecError>,
    text_bytes: u64,
}

impl Pass {
    /// Drive at most `budget` further instructions; returns how many
    /// actually retired (the caller's progress/budget accounting).
    fn drive_budget(&mut self, budget: u64) -> u64 {
        let before = self.exec.instructions();
        let error = drive(
            &mut self.exec,
            &mut self.timings,
            self.backend.as_mut(),
            &mut self.watch,
            &mut self.stats,
            budget,
        );
        if error.is_some() {
            // The machine halts on its first error, so at most one
            // slice ever reports one.
            self.error = error;
        }
        self.exec.instructions() - before
    }

    fn done(&self) -> bool {
        self.exec.is_halted()
    }

    fn finish(self) -> Vec<SessionReport> {
        let (stats, error, text_bytes) = (self.stats, self.error, self.text_bytes);
        self.timings
            .finish()
            .into_iter()
            .map(|run| SessionReport { run, transitions: stats, error, text_bytes })
            .collect()
    }
}

/// The perturbing-group continuation: the built backend and program
/// (static work, done once at admission), the warmed copy-on-write
/// template, and the cursor over sub-batches. Exactly
/// `run_perturbing_group`'s loop, with the current sub-batch's pass
/// lifted into a resumable field.
struct GroupRun {
    built: Box<dyn BackendImpl>,
    prog: Program,
    text_bytes: u64,
    watchpoints: Vec<Watchpoint>,
    batches: Vec<Vec<CpuConfig>>,
    /// The warmed template: image loaded, PC at entry, SP set, never
    /// stepped. Its engine configuration is irrelevant — every
    /// sub-batch forks with its own capacities.
    template: Option<Executor>,
    next: usize,
    current: Option<Pass>,
    out: Vec<Result<Vec<SessionReport>, DebugError>>,
}

impl GroupRun {
    /// Advance by at most `budget` instructions; `Some(results)` when
    /// the whole group has finished.
    fn advance(
        &mut self,
        mut budget: u64,
        progress: &mut u64,
    ) -> Option<Vec<Result<Vec<SessionReport>, DebugError>>> {
        loop {
            if let Some(pass) = self.current.as_mut() {
                let ran = pass.drive_budget(budget);
                *progress += ran;
                budget -= ran;
                if !pass.done() {
                    return None; // budget exhausted mid-sub-batch
                }
                let pass = self.current.take().expect("current pass present");
                self.out.push(Ok(pass.finish()));
            }
            let Some(cpus) = self.batches.get(self.next) else {
                return Some(std::mem::take(&mut self.out));
            };
            self.next += 1;
            let cfgs: Vec<CpuConfig> = cpus.iter().map(|&c| self.built.cpu_config(c)).collect();
            let Some((first, rest)) = cfgs.split_first() else {
                self.out.push(Ok(Vec::new()));
                continue;
            };
            assert!(
                rest.iter().all(|c| c.engine == first.engine),
                "batched sessions must agree on the functional (DISE engine) configuration"
            );
            let template = match &mut self.template {
                Some(t) => t,
                None => {
                    let t = Executor::from_program(&self.prog, *first);
                    IMAGE_LOADS.fetch_add(1, Ordering::Relaxed);
                    self.template.insert(t)
                }
            };
            let mut exec = match template.fork_with_config(*first) {
                Ok(exec) => exec,
                Err(e) => {
                    self.out.push(Err(e.into()));
                    continue;
                }
            };
            CHECKPOINT_FORKS.fetch_add(1, Ordering::Relaxed);
            let mut backend = self.built.boxed_clone();
            if let Err(e) = backend.configure(&mut exec, &self.watchpoints) {
                self.out.push(Err(e));
                continue;
            }
            let watch = WatchState::new(&self.watchpoints, exec.mem());
            let timings = TimingBatch::new(&cfgs);
            FUNCTIONAL_PASSES.fetch_add(1, Ordering::Relaxed);
            self.current = Some(Pass {
                exec,
                timings,
                backend,
                watch,
                stats: TransitionStats::default(),
                error: None,
                text_bytes: self.text_bytes,
            });
        }
    }
}

/// One admitted member of an observer pass: its replayable detector and
/// private accounting, fed the shared `Exec` stream. `filter` is the
/// member's precomputed store-footprint prefilter; the fan-out rebuilds
/// it (for dynamic filters only) after every forced scan.
struct LiveObserver {
    member: usize,
    observer: Box<dyn ObserverImpl>,
    watch: WatchState,
    filter: WatchFilter,
    timing: MemberTiming,
    stats: TransitionStats,
}

/// Where a member's timing models live: in a shared copy-on-write
/// [`TimingGroup`], or privately once the member's cycle stream has
/// diverged from its group's.
///
/// Timing is a pure function of the record stream and the member's
/// *spurious-stall* sequence (non-spurious transitions touch statistics,
/// never cycles). Members admitted with identical `CpuConfig` lists
/// therefore hold bit-identical timing state until the first spurious
/// transition — so the fan-out consumes each chunk **once per group**
/// instead of once per member, and a member forks its private copy of
/// the group state (exactly as of the preceding chunk) at the moment it
/// first needs to interleave a stall. `DISE_TIMING_SHARE=0` disables
/// the sharing; every report is byte-identical either way.
enum MemberTiming {
    Shared(usize),
    Private(TimingBatch),
}

impl MemberTiming {
    /// The member is about to interleave a stall with its consumes:
    /// detach from the shared group (which has *not* consumed the
    /// current chunk yet) and return the private models.
    fn fork<'a>(&'a mut self, groups: &[TimingGroup]) -> &'a mut TimingBatch {
        if let MemberTiming::Shared(g) = *self {
            *self = MemberTiming::Private(groups[g].timings.clone());
        }
        match self {
            MemberTiming::Private(t) => t,
            MemberTiming::Shared(_) => unreachable!("just forked"),
        }
    }
}

/// One shared timing state per distinct `CpuConfig` list across the
/// batch's members.
struct TimingGroup {
    timings: TimingBatch,
    cfgs: Vec<CpuConfig>,
}

/// Must `e` leave the clean bulk path? A record is dirty when it
/// carries an event (every member must classify it at exact memory) or
/// its store touches some member's filter (that member must observe it
/// at exact memory — and for an indirect watch the filter includes the
/// pointer cell, so a retargeting store is always dirty and the filters
/// never go stale inside a clean chunk).
fn record_is_dirty(live: &[LiveObserver], e: &Exec) -> bool {
    if e.event.is_some() {
        return true;
    }
    match e.mem {
        Some(m) if m.is_store => live.iter().any(|l| l.filter.hits_store(m.addr, m.width)),
        _ => false,
    }
}

/// The chunk-at-a-time fan-out shared verbatim by the live pass and the
/// trace replay (the two loops previously duplicated this logic
/// record-at-a-time). One scratch chunk and one scratch hit list live
/// for the whole run — no per-record heap traffic.
///
/// The dispatch contract, per chunk and per member:
///
/// - the member's [`WatchFilter`] misses the chunk's
///   [`dise_cpu::ChunkSummary`] and the chunk carries no event → the
///   member's `observe` is skipped for every record and its timing
///   models consume the records as one bulk slice;
/// - otherwise the member scans record by record, with the exact
///   consume/observe/stall interleaving of the scalar loop.
///
/// Byte-identity for every chunk size rests on one invariant: `observe`
/// only ever runs against memory *exactly* as of its record. Clean
/// chunks guarantee it vacuously (no watched byte moved, so observation
/// is memory-independent for every skipped *and* scanned member);
/// dirty records are dispatched as chunks of one.
struct FanOut {
    chunk: ExecChunk,
    hits: Vec<(u32, Transition)>,
    groups: Vec<TimingGroup>,
    /// Per-chunk scratch: which groups still owe this chunk a consume.
    pending: Vec<bool>,
}

impl FanOut {
    fn new(groups: Vec<TimingGroup>) -> FanOut {
        FanOut {
            chunk: ExecChunk::with_capacity(chunk_capacity_from_env()),
            hits: Vec::new(),
            pending: vec![false; groups.len()],
            groups,
        }
    }

    /// Dispatch the buffered records to every member and reset the
    /// chunk. No-op on an empty chunk.
    ///
    /// Per member: skip (filter misses, no event), or scan. A scanning
    /// member whose hits carry no spurious stall only *counts* them —
    /// its cycle stream is still the plain slice, so its timing stays
    /// with the group. Group consumes run last, after every possible
    /// fork has copied the group's pre-chunk state.
    fn flush(&mut self, live: &mut [LiveObserver], mem: &Memory) {
        if self.chunk.is_empty() {
            return;
        }
        FANOUT_CHUNKS.fetch_add(1, Ordering::Relaxed);
        let summary = *self.chunk.summary();
        let records = self.chunk.records();
        for p in &mut self.pending {
            *p = false;
        }
        for l in live.iter_mut() {
            let consumed = if summary.any_event() || l.filter.intersects(&summary) {
                scan_member(l, &self.groups, records, &mut self.hits, mem)
            } else {
                FANOUT_CHUNKS_SKIPPED.fetch_add(1, Ordering::Relaxed);
                false
            };
            if !consumed {
                match &mut l.timing {
                    MemberTiming::Shared(g) => self.pending[*g] = true,
                    MemberTiming::Private(t) => t.consume_slice(records),
                }
            }
        }
        for (g, pending) in self.groups.iter_mut().zip(&self.pending) {
            if *pending {
                g.timings.consume_slice(records);
            }
        }
        self.chunk.clear();
    }

    /// Dispatch one dirty record as its own chunk — after the clean
    /// prefix has been flushed, so `mem` is exactly as of `e`. Returns
    /// the execution error the record carries, if any.
    fn dispatch_dirty(
        &mut self,
        e: &Exec,
        live: &mut [LiveObserver],
        mem: &Memory,
    ) -> Option<ExecError> {
        debug_assert!(self.chunk.is_empty(), "flush the clean prefix before a dirty record");
        self.chunk.push(*e);
        self.flush(live, mem);
        match e.event {
            Some(Event::Error(err)) => Some(err),
            _ => None,
        }
    }
}

/// One member's record-by-record chunk scan. When a hit is spurious the
/// member must interleave a stall with its consumes — it forks off its
/// timing group (pre-chunk state) and reproduces the scalar loop's
/// exact ordering: each record consumed before its transition is
/// counted and stalled. Hits without stalls only touch statistics, so
/// the member's cycle stream is still the plain slice and its timing
/// stays shared (the caller consumes it group-wise); the return value
/// says whether this member's models already consumed the chunk. A
/// dynamic filter is rebuilt afterwards — the scan may have moved an
/// indirect watch's target.
fn scan_member(
    l: &mut LiveObserver,
    groups: &[TimingGroup],
    records: &[Exec],
    hits: &mut Vec<(u32, Transition)>,
    mem: &Memory,
) -> bool {
    FANOUT_CHUNKS_SCANNED.fetch_add(1, Ordering::Relaxed);
    hits.clear();
    l.observer.observe_slice(records, mem, &mut l.watch, &mut l.stats, hits);
    let consumed = if hits.iter().any(|&(_, t)| t.is_spurious()) {
        let timings = l.timing.fork(groups);
        let mut next = 0usize;
        for &(i, t) in hits.iter() {
            let i = i as usize;
            timings.consume_slice(&records[next..=i]);
            next = i + 1;
            l.stats.count(t);
            if t.is_spurious() {
                timings.debugger_stall();
            }
        }
        timings.consume_slice(&records[next..]);
        true
    } else {
        for &(_, t) in hits.iter() {
            l.stats.count(t);
        }
        false
    };
    if l.filter.is_dynamic() {
        l.filter = l.observer.filter(&l.watch, mem);
    }
    consumed
}

/// The observer-batch continuation: one shared machine and every
/// admitted member's detector — `ObserverBatch::run`'s loop with the
/// instruction cursor lifted out.
struct ObserveRun {
    exec: Executor,
    live: Vec<LiveObserver>,
    fan: FanOut,
    results: Vec<Result<Vec<SessionReport>, DebugError>>,
    error: Option<ExecError>,
    text_bytes: u64,
    /// When recording, the persistent-trace writer fed every stepped
    /// record — the "record on miss" half of the trace economy.
    writer: Option<TraceWriter>,
}

impl ObserveRun {
    fn drive_budget(&mut self, budget: u64) -> u64 {
        let ObserveRun { exec, live, fan, error, writer, .. } = self;
        let mut n = 0u64;
        while n < budget && !exec.is_halted() {
            let (stepped, dirty) = exec.step_chunk(&mut fan.chunk, budget - n, |e| {
                if let Some(w) = writer.as_mut() {
                    w.record(e);
                }
                record_is_dirty(live, e)
            });
            n += stepped;
            if let Some(e) = dirty {
                fan.flush(live, exec.mem());
                if let Some(err) = fan.dispatch_dirty(&e, live, exec.mem()) {
                    *error = Some(err);
                }
            } else if fan.chunk.is_full() {
                fan.flush(live, exec.mem());
            }
        }
        // Nothing buffers across polls: a yielded task is exactly as
        // dispatched as a run-to-completion one.
        fan.flush(live, exec.mem());
        n
    }

    fn done(&self) -> bool {
        self.exec.is_halted()
    }

    fn finish(mut self) -> Vec<Result<Vec<SessionReport>, DebugError>> {
        if let Some(writer) = self.writer.take() {
            // A recording the caller asked for must either be sealed or
            // fail loudly — a silently missing trace would re-pay the
            // functional pass forever without anyone noticing.
            if let Err(e) = writer.finish() {
                panic!("failed to persist the recorded session trace: {e}");
            }
        }
        finish_members(self.live, self.fan.groups, self.results, self.error, self.text_bytes)
    }
}

/// Scatter the finished members into their result slots — shared by the
/// live-pass and replay continuations, which must agree bit-for-bit.
/// Each group's timing models are finished **once**; every member still
/// on the group reports those same stats — bit-identical to the private
/// models it never needed (cloning the whole model state instead would
/// cost thousands of cache-set allocations per member).
fn finish_members(
    live: Vec<LiveObserver>,
    groups: Vec<TimingGroup>,
    mut results: Vec<Result<Vec<SessionReport>, DebugError>>,
    error: Option<ExecError>,
    text_bytes: u64,
) -> Vec<Result<Vec<SessionReport>, DebugError>> {
    let group_runs: Vec<Vec<RunStats>> = groups.into_iter().map(|g| g.timings.finish()).collect();
    for l in live {
        let runs = match l.timing {
            MemberTiming::Private(t) => t.finish(),
            MemberTiming::Shared(g) => group_runs[g].clone(),
        };
        results[l.member] = Ok(runs
            .into_iter()
            .map(|run| SessionReport { run, transitions: l.stats, error, text_bytes })
            .collect());
    }
    results
}

/// The observer-batch continuation running entirely from a stored
/// trace: the `Exec` stream comes from a [`TraceReader`] instead of a
/// machine, with a shadow [`Memory`] kept exact by applying each
/// record's store effect — so `WatchState` re-evaluation reads the
/// same bytes it would have read live. No functional pass, no image
/// load; the counters prove it.
struct ReplayRun {
    reader: TraceReader,
    mem: Memory,
    live: Vec<LiveObserver>,
    fan: FanOut,
    results: Vec<Result<Vec<SessionReport>, DebugError>>,
    error: Option<ExecError>,
    text_bytes: u64,
    exhausted: bool,
}

impl ReplayRun {
    fn drive_budget(&mut self, budget: u64) -> u64 {
        let ReplayRun { reader, mem, live, fan, error, exhausted, .. } = self;
        let mut n = 0u64;
        while n < budget && !*exhausted {
            let step = reader.next_chunk(&mut fan.chunk, budget - n, |e| {
                // Mirror the live order: the machine performs a store
                // before observers see its record. Applying it before
                // the dirty verdict is safe — a clean record's store
                // missed every filter, so no member observation can
                // read the bytes it moved.
                if let Some(m) = e.mem {
                    if m.is_store {
                        mem.write_u(m.addr, m.width, m.new_value);
                    }
                }
                record_is_dirty(live, e)
            });
            let (read, dirty) = match step {
                Ok(r) => r,
                // `TraceReader::open` validated every CRC eagerly, so a
                // mid-stream decode failure means hand-damaged bytes
                // that still satisfied their checksum — reject loudly,
                // never deliver a silently wrong replay.
                Err(e) => panic!("trace replay failed mid-stream: {e}"),
            };
            n += read;
            if let Some(e) = dirty {
                fan.flush(live, mem);
                if let Some(err) = fan.dispatch_dirty(&e, live, mem) {
                    *error = Some(err);
                }
            } else if fan.chunk.is_full() {
                fan.flush(live, mem);
            } else if read == 0 {
                *exhausted = true;
            }
        }
        fan.flush(live, mem);
        n
    }

    fn done(&self) -> bool {
        self.exhausted
    }

    fn finish(self) -> Vec<Result<Vec<SessionReport>, DebugError>> {
        finish_members(self.live, self.fan.groups, self.results, self.error, self.text_bytes)
    }
}

impl SessionTask {
    /// A task for one session under one timing configuration — a batch
    /// of one, exactly as [`crate::Session`] is internally.
    pub fn session(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        cpu: CpuConfig,
    ) -> SessionTask {
        SessionTask::batch(app, watchpoints, backend, &[cpu])
    }

    /// A task that will perform [`crate::run_session_batch`]: one
    /// functional pass under `backend`, accounted against all of `cpus`.
    pub fn batch(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        cpus: &[CpuConfig],
    ) -> SessionTask {
        SessionTask::pending(State::PendingBatch(BatchSpec {
            app: app.clone(),
            watchpoints,
            backend,
            cpus: cpus.to_vec(),
        }))
    }

    /// A task that will perform [`crate::run_perturbing_group`]: one
    /// image load, one copy-on-write fork per engine-configuration
    /// sub-batch.
    pub fn perturbing_group(
        app: &Application,
        watchpoints: Vec<Watchpoint>,
        backend: BackendKind,
        batches: &[Vec<CpuConfig>],
    ) -> SessionTask {
        SessionTask::pending(State::PendingGroup(GroupSpec {
            app: app.clone(),
            watchpoints,
            backend,
            batches: batches.to_vec(),
        }))
    }

    /// A task that will perform [`crate::ObserverBatch::run`]: one
    /// shared functional pass fanned out to every `(backend,
    /// watchpoints, cpus)` member.
    ///
    /// # Panics
    ///
    /// Panics when a member backend is perturbing, as
    /// [`crate::ObserverBatch::member`] does.
    pub fn observer(
        app: &Application,
        members: Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)>,
    ) -> SessionTask {
        assert_observation_only(&members);
        SessionTask::pending(State::PendingObserve(ObserveSpec {
            app: app.clone(),
            members,
            record: None,
        }))
    }

    /// [`SessionTask::observer`], additionally persisting the shared
    /// functional pass to `trace` — the same single pass serves the
    /// members *and* every future replay. The trace appears atomically
    /// when the pass completes; an abandoned task publishes nothing.
    ///
    /// # Panics
    ///
    /// Panics when a member backend is perturbing, as
    /// [`SessionTask::observer`] does.
    pub fn observer_recorded(
        app: &Application,
        members: Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)>,
        trace: &Path,
    ) -> SessionTask {
        assert_observation_only(&members);
        SessionTask::pending(State::PendingObserve(ObserveSpec {
            app: app.clone(),
            members,
            record: Some(trace.to_path_buf()),
        }))
    }

    /// An observer batch that runs entirely from the stored trace at
    /// `trace`: zero functional passes, zero image loads, results
    /// bit-identical to [`SessionTask::observer`] on the live machine.
    /// Admission fingerprints `app` and rejects a stale, corrupt, or
    /// truncated trace with [`DebugError::Trace`] — loudly, never a
    /// silently wrong replay.
    ///
    /// # Panics
    ///
    /// Panics when a member backend is perturbing, as
    /// [`SessionTask::observer`] does.
    pub fn observer_replay(
        app: &Application,
        members: Vec<(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)>,
        trace: &Path,
    ) -> SessionTask {
        assert_observation_only(&members);
        SessionTask::pending(State::PendingReplay(ReplaySpec {
            app: app.clone(),
            members,
            trace: trace.to_path_buf(),
        }))
    }

    fn pending(state: State) -> SessionTask {
        SessionTask { gate: None, progress: 0, state }
    }

    /// Builder form of [`SessionTask::block`]: the task starts parked.
    #[must_use]
    pub fn gated(mut self, reason: impl Into<String>) -> SessionTask {
        self.block(reason);
        self
    }

    /// Park the task: until [`SessionTask::unblock`], every poll
    /// reports [`Step::Blocked`] without consuming budget. How a
    /// scheduler expresses "run session B only after session A" without
    /// burning slices on B.
    pub fn block(&mut self, reason: impl Into<String>) {
        self.gate = Some(reason.into());
    }

    /// Open the gate set by [`SessionTask::block`].
    pub fn unblock(&mut self) {
        self.gate = None;
    }

    /// True while the task is parked behind a gate.
    pub fn is_blocked(&self) -> bool {
        self.gate.is_some()
    }

    /// Dynamic instructions retired so far — the virtual-progress
    /// priority key.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Advance by at most `budget` dynamic instructions.
    ///
    /// Admission (validation, backend build, image load) happens lazily
    /// at the first unblocked poll and is not charged against the
    /// budget; instrumentation counters tick at exactly the points the
    /// wrapped run-to-completion path would tick them. Any slicing of
    /// budgets yields byte-identical results and counters to a single
    /// `poll(u64::MAX)`.
    ///
    /// # Panics
    ///
    /// Panics when called again after [`Step::Done`] — a completed
    /// continuation has no state left to run.
    pub fn poll(&mut self, budget: u64) -> Step {
        if let Some(reason) = &self.gate {
            return Step::Blocked(reason.clone());
        }
        match std::mem::replace(&mut self.state, State::Finished) {
            State::PendingBatch(spec) => match admit_batch(spec) {
                Ok(Some(pass)) => self.state = State::Batch(pass),
                Ok(None) => return Step::Done(TaskOutput::Batch(Ok(Vec::new()))),
                Err(e) => return Step::Done(TaskOutput::Batch(Err(e))),
            },
            State::PendingGroup(spec) => match admit_group(spec) {
                Ok(run) => self.state = State::Group(Box::new(run)),
                Err(e) => return Step::Done(TaskOutput::Group(Err(e))),
            },
            State::PendingObserve(spec) => match admit_observe(spec) {
                Ok(Admitted::Live(run)) => self.state = State::Observe(*run),
                Ok(Admitted::Settled(results)) => {
                    return Step::Done(TaskOutput::Observe(Ok(results)))
                }
                Err(e) => return Step::Done(TaskOutput::Observe(Err(e))),
            },
            State::PendingReplay(spec) => match admit_replay(spec) {
                Ok(ReplayAdmitted::Live(run)) => self.state = State::Replay(run),
                Ok(ReplayAdmitted::Settled(results)) => {
                    return Step::Done(TaskOutput::Observe(Ok(results)))
                }
                Err(e) => return Step::Done(TaskOutput::Observe(Err(e))),
            },
            State::Finished => panic!("SessionTask polled after completion"),
            running => self.state = running,
        }
        match &mut self.state {
            State::Batch(pass) => {
                self.progress += pass.drive_budget(budget);
                if pass.done() {
                    let State::Batch(pass) = std::mem::replace(&mut self.state, State::Finished)
                    else {
                        unreachable!("state checked above");
                    };
                    return Step::Done(TaskOutput::Batch(Ok(pass.finish())));
                }
            }
            State::Group(run) => {
                if let Some(out) = run.advance(budget, &mut self.progress) {
                    self.state = State::Finished;
                    return Step::Done(TaskOutput::Group(Ok(out)));
                }
            }
            State::Observe(run) => {
                self.progress += run.drive_budget(budget);
                if run.done() {
                    let State::Observe(run) = std::mem::replace(&mut self.state, State::Finished)
                    else {
                        unreachable!("state checked above");
                    };
                    return Step::Done(TaskOutput::Observe(Ok(run.finish())));
                }
            }
            State::Replay(run) => {
                self.progress += run.drive_budget(budget);
                if run.done() {
                    let State::Replay(run) = std::mem::replace(&mut self.state, State::Finished)
                    else {
                        unreachable!("state checked above");
                    };
                    return Step::Done(TaskOutput::Observe(Ok(run.finish())));
                }
            }
            State::PendingBatch(_)
            | State::PendingGroup(_)
            | State::PendingObserve(_)
            | State::PendingReplay(_)
            | State::Finished => {
                unreachable!("pending states were admitted above")
            }
        }
        Step::Yielded(TaskProgress { instructions: self.progress })
    }

    /// Drive the task to completion in unbounded slices — the legacy
    /// entry points' implementation.
    ///
    /// # Panics
    ///
    /// Panics when the task is gated: nothing here can unblock it.
    pub fn run_to_completion(mut self) -> TaskOutput {
        loop {
            match self.poll(u64::MAX) {
                Step::Done(out) => return out,
                Step::Yielded(_) => {}
                Step::Blocked(reason) => {
                    panic!("cannot run a gated task to completion: blocked on {reason}")
                }
            }
        }
    }
}

/// Admission for a batch task: `run_session_batch` up to (and
/// including) the `FUNCTIONAL_PASSES` tick, stopping short of driving.
/// `Ok(None)` is the empty-configuration batch (no pass to run).
fn admit_batch(spec: BatchSpec) -> Result<Option<Pass>, DebugError> {
    validate_watchpoints(&spec.watchpoints)?;
    let mut backend = spec.backend.instantiate();
    let prog = backend.build_program(&spec.app, &spec.watchpoints)?;
    let cfgs: Vec<CpuConfig> = spec.cpus.iter().map(|&c| backend.cpu_config(c)).collect();
    let Some((first, rest)) = cfgs.split_first() else {
        return Ok(None);
    };
    assert!(
        rest.iter().all(|c| c.engine == first.engine),
        "batched sessions must agree on the functional (DISE engine) configuration"
    );
    let mut exec = Executor::from_program(&prog, *first);
    IMAGE_LOADS.fetch_add(1, Ordering::Relaxed);
    backend.configure(&mut exec, &spec.watchpoints)?;
    let watch = WatchState::new(&spec.watchpoints, exec.mem());
    let timings = TimingBatch::new(&cfgs);
    FUNCTIONAL_PASSES.fetch_add(1, Ordering::Relaxed);
    Ok(Some(Pass {
        exec,
        timings,
        backend,
        watch,
        stats: TransitionStats::default(),
        error: None,
        text_bytes: prog.text_bytes(),
    }))
}

/// Admission for a perturbing group: the group-wide static work
/// (validation, instantiation, `build_program`). The image load and
/// per-sub-batch forks happen as the run reaches them.
fn admit_group(spec: GroupSpec) -> Result<GroupRun, DebugError> {
    validate_watchpoints(&spec.watchpoints)?;
    let mut built = spec.backend.instantiate();
    let prog = built.build_program(&spec.app, &spec.watchpoints)?;
    let text_bytes = prog.text_bytes();
    Ok(GroupRun {
        built,
        prog,
        text_bytes,
        watchpoints: spec.watchpoints,
        batches: spec.batches,
        template: None,
        next: 0,
        current: None,
        out: Vec::new(),
    })
}

enum Admitted {
    Live(Box<ObserveRun>),
    /// Every member failed admission (or there were none): the results
    /// are already final and no pass runs (or is counted).
    Settled(Vec<Result<Vec<SessionReport>, DebugError>>),
}

enum ReplayAdmitted {
    Live(Box<ReplayRun>),
    Settled(Vec<Result<Vec<SessionReport>, DebugError>>),
}

fn assert_observation_only(members: &[(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)]) {
    for (backend, ..) in members {
        assert!(
            backend.observation_only(),
            "{backend:?} perturbs the functional stream and must replay privately \
             (run_session_batch)"
        );
    }
}

/// Per-member admission shared by the live and replay observer paths:
/// validate and instantiate each member against the loaded memory
/// image, settling failures into their result slots. The two paths
/// must admit identically or replayed results could diverge from live
/// ones in *shape*, not just content.
#[allow(clippy::type_complexity)]
fn admit_members(
    members: &[(BackendKind, Vec<Watchpoint>, Vec<CpuConfig>)],
    mem: &Memory,
) -> (Vec<LiveObserver>, Vec<TimingGroup>, Vec<Result<Vec<SessionReport>, DebugError>>) {
    let share = dise_env::env_flag("DISE_TIMING_SHARE", true);
    let mut results: Vec<Result<Vec<SessionReport>, DebugError>> =
        members.iter().map(|_| Ok(Vec::new())).collect();
    let mut live: Vec<LiveObserver> = Vec::new();
    let mut groups: Vec<TimingGroup> = Vec::new();
    for (i, (backend, watchpoints, cpus)) in members.iter().enumerate() {
        let admitted = validate_watchpoints(watchpoints)
            .and_then(|()| backend.instantiate_observer(watchpoints));
        match admitted {
            Ok(observer) => {
                let watch = WatchState::new(watchpoints, mem);
                let filter = observer.filter(&watch, mem);
                let timing = if share {
                    let g = groups.iter().position(|g| g.cfgs == *cpus).unwrap_or_else(|| {
                        groups.push(TimingGroup {
                            timings: TimingBatch::new(cpus),
                            cfgs: cpus.clone(),
                        });
                        groups.len() - 1
                    });
                    MemberTiming::Shared(g)
                } else {
                    MemberTiming::Private(TimingBatch::new(cpus))
                };
                live.push(LiveObserver {
                    member: i,
                    observer,
                    watch,
                    filter,
                    timing,
                    stats: TransitionStats::default(),
                });
            }
            Err(e) => results[i] = Err(e),
        }
    }
    (live, groups, results)
}

/// Admission for an observer batch: `ObserverBatch::run` up to the
/// `FUNCTIONAL_PASSES` tick. Member admission failures settle into
/// their slots exactly as before; the shared machine is loaded (and
/// counted) even if every member then fails, as the eager path did.
fn admit_observe(spec: ObserveSpec) -> Result<Admitted, DebugError> {
    let prog = spec.app.program()?;
    // The executor's configuration only matters functionally through
    // its DISE engine capacities, and no observer installs productions;
    // any member's configuration (or the default) loads the same
    // machine.
    let cfg = spec.members.iter().find_map(|(.., cpus)| cpus.first()).copied().unwrap_or_default();
    let exec = Executor::from_program(&prog, cfg);
    IMAGE_LOADS.fetch_add(1, Ordering::Relaxed);
    let (live, groups, results) = admit_members(&spec.members, exec.mem());
    if live.is_empty() {
        // No pass runs, so nothing is recorded either: a group that
        // settles at admission stays settled — and cold — forever.
        return Ok(Admitted::Settled(results));
    }
    let writer = match &spec.record {
        Some(path) => {
            let w = TraceWriter::create(path, program_fingerprint(&prog))?;
            TRACE_RECORDS.fetch_add(1, Ordering::Relaxed);
            Some(w)
        }
        None => None,
    };
    FUNCTIONAL_PASSES.fetch_add(1, Ordering::Relaxed);
    Ok(Admitted::Live(Box::new(ObserveRun {
        exec,
        live,
        fan: FanOut::new(groups),
        results,
        error: None,
        text_bytes: prog.text_bytes(),
        writer,
    })))
}

/// Admission for a replayed observer batch: open and fully validate
/// the trace (magic, version, CRCs, fingerprint against the assembled
/// program — every corruption class surfaces here as
/// [`DebugError::Trace`]), build the shadow memory, and admit members
/// exactly as the live path does. Ticks neither `FUNCTIONAL_PASSES`
/// nor `IMAGE_LOADS`: nothing executes and no machine is loaded.
fn admit_replay(spec: ReplaySpec) -> Result<ReplayAdmitted, DebugError> {
    let prog = spec.app.program()?;
    let reader = TraceReader::open(&spec.trace, Some(program_fingerprint(&prog)))?;
    let mut mem = Memory::new();
    prog.load(&mut mem);
    let (live, groups, results) = admit_members(&spec.members, &mem);
    if live.is_empty() {
        return Ok(ReplayAdmitted::Settled(results));
    }
    TRACE_REPLAYS.fetch_add(1, Ordering::Relaxed);
    Ok(ReplayAdmitted::Live(Box::new(ReplayRun {
        reader,
        mem,
        live,
        fan: FanOut::new(groups),
        results,
        error: None,
        text_bytes: prog.text_bytes(),
        exhausted: false,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_perturbing_group, run_session_batch, WatchExpr};
    use dise_asm::{parse_asm, Layout};
    use dise_isa::Width;

    fn app(iters: u32) -> Application {
        let src = format!(
            "start:  la r1, watched
                     lda r4, {iters}(zero)
             loop:   .stmt
                     stq r4, 0(r1)
                     subq r4, 1, r4
                     bgt r4, loop
                     halt
             .data
             watched: .quad 0
            "
        );
        Application::new(parse_asm(&src).unwrap(), Layout::default())
    }

    fn wp(app: &Application) -> Watchpoint {
        let addr = app.program().unwrap().symbol("watched").unwrap();
        Watchpoint::new(WatchExpr::Scalar { addr, width: Width::Q })
    }

    /// Scheduler workers hand tasks across threads between slices.
    #[test]
    fn session_tasks_are_send() {
        fn is_send<T: Send>() {}
        is_send::<SessionTask>();
        is_send::<TaskOutput>();
        is_send::<Step>();
    }

    /// The tentpole invariant: any budget slicing yields byte-identical
    /// reports to the run-to-completion path, for all three shapes.
    #[test]
    fn sliced_polls_match_run_to_completion_for_every_shape() {
        let a = app(20);
        let cpus = [CpuConfig::default(), CpuConfig { commit_width: 2, ..CpuConfig::default() }];
        let budgets = [1u64, 7, 23, 97, 512];

        let reference_batch =
            run_session_batch(&a, vec![wp(&a)], BackendKind::dise_default(), &cpus).unwrap();
        let batches = vec![cpus.to_vec(), cpus.to_vec()];
        let reference_group =
            run_perturbing_group(&a, vec![wp(&a)], BackendKind::dise_default(), &batches).unwrap();
        let members = vec![(BackendKind::VirtualMemory, vec![wp(&a)], cpus.to_vec())];
        let reference_obs =
            SessionTask::observer(&a, members.clone()).run_to_completion().into_observe().unwrap();

        for (i, &budget) in budgets.iter().enumerate() {
            let mut task = SessionTask::batch(&a, vec![wp(&a)], BackendKind::dise_default(), &cpus);
            let out = poll_until_done(&mut task, budget);
            assert_eq!(out.into_batch().unwrap(), reference_batch, "batch, budget {budget}");

            let mut task = SessionTask::perturbing_group(
                &a,
                vec![wp(&a)],
                BackendKind::dise_default(),
                &batches,
            );
            let out = poll_until_done(&mut task, budgets[budgets.len() - 1 - i]);
            assert_eq!(out.into_group().unwrap(), reference_group, "group, budget {budget}");

            let mut task = SessionTask::observer(&a, members.clone());
            let out = poll_until_done(&mut task, budget);
            assert_eq!(out.into_observe().unwrap(), reference_obs, "observe, budget {budget}");
        }
    }

    fn poll_until_done(task: &mut SessionTask, budget: u64) -> TaskOutput {
        let mut yields = 0u64;
        loop {
            match task.poll(budget) {
                Step::Done(out) => {
                    assert!(yields > 0 || budget >= task.progress(), "small budgets must yield");
                    return out;
                }
                Step::Yielded(p) => {
                    yields += 1;
                    assert_eq!(p.instructions, task.progress());
                }
                Step::Blocked(reason) => panic!("ungated task reported blocked: {reason}"),
            }
        }
    }

    /// Progress is monotone and counts real retired instructions.
    #[test]
    fn progress_tracks_retired_instructions() {
        let a = app(10);
        let mut task = SessionTask::session(
            &a,
            vec![wp(&a)],
            BackendKind::VirtualMemory,
            CpuConfig::default(),
        );
        let mut last = 0;
        loop {
            match task.poll(16) {
                Step::Yielded(p) => {
                    assert!(p.instructions > last, "each slice makes progress");
                    assert!(p.instructions <= last + 16, "never exceeds the budget");
                    last = p.instructions;
                }
                Step::Done(out) => {
                    let reports = out.into_batch().unwrap();
                    assert_eq!(reports[0].run.instructions, task.progress());
                    break;
                }
                Step::Blocked(reason) => panic!("ungated task reported blocked: {reason}"),
            }
        }
    }

    /// A gated task consumes no budget and does no admission work until
    /// unblocked.
    #[test]
    fn gated_tasks_block_without_progress() {
        let a = app(5);
        let mut task = SessionTask::session(
            &a,
            vec![wp(&a)],
            BackendKind::VirtualMemory,
            CpuConfig::default(),
        )
        .gated("after warmup");
        assert!(task.is_blocked());
        let passes_before = crate::functional_passes();
        match task.poll(u64::MAX) {
            Step::Blocked(reason) => assert_eq!(reason, "after warmup"),
            _ => panic!("gated task must report Blocked"),
        }
        assert_eq!(task.progress(), 0);
        assert_eq!(crate::functional_passes(), passes_before, "no admission while gated");
        task.unblock();
        assert!(matches!(task.poll(u64::MAX), Step::Done(_)));
    }

    #[test]
    #[should_panic(expected = "polled after completion")]
    fn polling_a_finished_task_panics() {
        let a = app(2);
        let mut task = SessionTask::session(
            &a,
            vec![wp(&a)],
            BackendKind::VirtualMemory,
            CpuConfig::default(),
        );
        while !matches!(task.poll(u64::MAX), Step::Done(_)) {}
        let _ = task.poll(1);
    }

    /// Satellite regression: the `ForkConfigError` → `DebugError`
    /// conversion both exists and renders usefully.
    #[test]
    fn fork_config_error_converts_to_debug_error() {
        let err: DebugError = dise_cpu::ForkConfigError { instructions: 7 }.into();
        assert_eq!(err, DebugError::Fork(dise_cpu::ForkConfigError { instructions: 7 }));
        let msg = err.to_string();
        assert!(msg.contains("retired 7 instructions"), "{msg}");
    }

    /// An invalid watchpoint settles a task at admission, identically
    /// to the eager path.
    #[test]
    fn admission_errors_settle_the_task() {
        let a = app(3);
        let addr = a.program().unwrap().symbol("watched").unwrap();
        let bad = Watchpoint::new(WatchExpr::Range { base: addr, len: 0 });
        let mut task =
            SessionTask::session(&a, vec![bad], BackendKind::VirtualMemory, CpuConfig::default());
        match task.poll(u64::MAX) {
            Step::Done(out) => {
                assert!(matches!(out.into_batch(), Err(DebugError::InvalidWatchpoint { .. })));
            }
            _ => panic!("invalid watchpoints settle at the first poll"),
        }
    }
}
