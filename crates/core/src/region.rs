//! The debugger's embedded data region (§4.2 "Debugger-generated
//! function": "the debugger appends a number of values to the
//! application's static data segment").

/// Summary of the appended region, as reported to the user and used by
/// the Fig. 2f protection production.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DebugRegion {
    /// Base address (aligned to `1 << prot_shift`).
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Protection granularity: the region occupies one naturally aligned
    /// `1 << prot_shift`-byte block (11 ⇒ the paper's 2 KB segment; grows
    /// when Bloom filters and shadows need more).
    pub prot_shift: u32,
}

impl DebugRegion {
    /// The value loaded into the `dseg` DISE register: the high-order
    /// bits that identify the protected block.
    pub fn seg_tag(&self) -> u64 {
        self.base >> self.prot_shift
    }

    /// Does an address fall inside the protected block?
    pub fn contains(&self, addr: u64) -> bool {
        addr >> self.prot_shift == self.seg_tag()
    }
}

/// Incremental builder for the region's initial bytes; every offset is
/// region-relative until the base is known.
#[derive(Clone, Debug, Default)]
pub(crate) struct RegionBuilder {
    bytes: Vec<u8>,
}

impl RegionBuilder {
    pub fn new() -> RegionBuilder {
        // Offset 0: the handler's register-save area (6 quads).
        RegionBuilder { bytes: vec![0; SAVE_BYTES as usize] }
    }

    /// Append one little-endian quad; returns its offset.
    pub fn quad(&mut self, v: u64) -> u64 {
        self.align(8);
        let off = self.bytes.len() as u64;
        self.bytes.extend_from_slice(&v.to_le_bytes());
        off
    }

    /// Append raw bytes; returns their offset.
    pub fn block(&mut self, b: &[u8], align: u64) -> u64 {
        self.align(align);
        let off = self.bytes.len() as u64;
        self.bytes.extend_from_slice(b);
        off
    }

    fn align(&mut self, a: u64) {
        while !(self.bytes.len() as u64).is_multiple_of(a) {
            self.bytes.push(0);
        }
    }

    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Finish: `(bytes, region)` where the region's base must be the
    /// address `append_data` actually chose (caller verifies alignment).
    pub fn finish(self, base: u64) -> (Vec<u8>, DebugRegion) {
        let size = self.bytes.len().max(1) as u64;
        let prot_shift = (64 - (size - 1).leading_zeros()).max(11);
        (self.bytes, DebugRegion { base, size, prot_shift })
    }

    /// The alignment the finished region will require.
    pub fn required_align(&self) -> u64 {
        let size = self.len().max(1);
        let shift = (64 - (size - 1).leading_zeros()).max(11);
        1u64 << shift
    }
}

/// Bytes reserved at offset 0 for the handler's register saves.
pub(crate) const SAVE_BYTES: u64 = 48;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_tag_and_contains() {
        let r = DebugRegion { base: 0x0200_0000, size: 2048, prot_shift: 11 };
        assert_eq!(r.seg_tag(), 0x0200_0000 >> 11);
        assert!(r.contains(0x0200_0000));
        assert!(r.contains(0x0200_07ff));
        assert!(!r.contains(0x0200_0800));
        assert!(!r.contains(0x01ff_ffff));
    }

    #[test]
    fn builder_offsets_and_alignment() {
        let mut b = RegionBuilder::new();
        assert_eq!(b.len(), SAVE_BYTES);
        let q = b.quad(7);
        assert_eq!(q, SAVE_BYTES);
        let blk = b.block(&[1; 100], 64);
        assert_eq!(blk % 64, 0);
        let (bytes, region) = b.finish(0x0100_0000);
        assert_eq!(&bytes[q as usize..q as usize + 8], &7u64.to_le_bytes());
        assert_eq!(region.prot_shift, 11, "small regions use the paper's 2KB block");
    }

    #[test]
    fn large_region_grows_protection_block() {
        let mut b = RegionBuilder::new();
        b.block(&[0; 5000], 8);
        let align = b.required_align();
        assert_eq!(align, 8192);
        let (_, region) = b.finish(0);
        assert_eq!(region.prot_shift, 13);
    }
}
