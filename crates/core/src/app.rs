//! The debugged application: a pre-layout assembly unit.

use dise_asm::{Asm, AsmError, Layout, Program};

/// An application handed to the debugger *before* layout, so that
/// backends that statically transform code (binary rewriting) can
/// re-assemble it, while the others just use the assembled image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Application {
    asm: Asm,
    layout: Layout,
}

impl Application {
    /// Wrap an assembly unit.
    pub fn new(asm: Asm, layout: Layout) -> Application {
        Application { asm, layout }
    }

    /// The assembly unit (pre-layout).
    pub fn asm(&self) -> &Asm {
        &self.asm
    }

    /// The layout used for assembly.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Assemble the unmodified image.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors.
    pub fn program(&self) -> Result<Program, AsmError> {
        self.asm.assemble(self.layout)
    }
}
