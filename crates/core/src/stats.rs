//! Debugger-transition taxonomy and accounting (§2 of the paper).

/// Classification of one application→debugger transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// Watched data was not written (or no breakpoint instruction
    /// executed) — e.g. a same-page store under the virtual-memory
    /// implementation, or a single-step that hit nothing.
    SpuriousAddress,
    /// A watched variable was written but the expression's value did not
    /// change (typically a silent store).
    SpuriousValue,
    /// The value changed but the user's predicate evaluated false.
    SpuriousPredicate,
    /// The user is invoked: masked by user interaction, charged zero
    /// cost by the paper's methodology.
    User,
    /// A store attempted to write the debugger's embedded data region
    /// and was caught by the protection production (Fig. 2f).
    ProtectionViolation,
}

impl Transition {
    /// Spurious transitions are perceived as application latency and are
    /// charged the full round-trip cost.
    pub fn is_spurious(&self) -> bool {
        !matches!(self, Transition::User)
    }
}

/// Counters over a debugging session.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TransitionStats {
    /// Spurious address transitions.
    pub spurious_address: u64,
    /// Spurious value transitions.
    pub spurious_value: u64,
    /// Spurious predicate transitions.
    pub spurious_predicate: u64,
    /// User transitions (masked, zero cost).
    pub user: u64,
    /// Protection violations caught.
    pub protection_violations: u64,
    /// DISE handler invocations (conditional calls taken), including
    /// Bloom-filter false positives.
    pub handler_calls: u64,
    /// Handler invocations that matched no watchpoint (Bloom false
    /// positives).
    pub false_positive_calls: u64,
}

impl TransitionStats {
    /// Record one transition.
    pub fn count(&mut self, t: Transition) {
        match t {
            Transition::SpuriousAddress => self.spurious_address += 1,
            Transition::SpuriousValue => self.spurious_value += 1,
            Transition::SpuriousPredicate => self.spurious_predicate += 1,
            Transition::User => self.user += 1,
            Transition::ProtectionViolation => self.protection_violations += 1,
        }
    }

    /// All spurious (costed) transitions.
    pub fn spurious_total(&self) -> u64 {
        self.spurious_address
            + self.spurious_value
            + self.spurious_predicate
            + self.protection_violations
    }

    /// All transitions including masked ones.
    pub fn total(&self) -> u64 {
        self.spurious_total() + self.user
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_flags() {
        assert!(Transition::SpuriousAddress.is_spurious());
        assert!(Transition::SpuriousValue.is_spurious());
        assert!(Transition::SpuriousPredicate.is_spurious());
        assert!(Transition::ProtectionViolation.is_spurious());
        assert!(!Transition::User.is_spurious());
    }

    #[test]
    fn counters_accumulate() {
        let mut s = TransitionStats::default();
        s.count(Transition::SpuriousAddress);
        s.count(Transition::SpuriousValue);
        s.count(Transition::SpuriousValue);
        s.count(Transition::User);
        assert_eq!(s.spurious_address, 1);
        assert_eq!(s.spurious_value, 2);
        assert_eq!(s.spurious_total(), 3);
        assert_eq!(s.total(), 4);
    }
}
