//! Cross-backend differential conformance suite.
//!
//! The paper's entire evaluation rests on one premise: the five
//! watchpoint implementations are *semantically interchangeable* — they
//! report the same user-visible debugging events and differ only in
//! overhead. This suite pits all applicable backends against each other
//! (and against an omniscient per-store oracle) on randomized
//! scenarios, and is the safety net for observer batching: a perturbing
//! backend silently reusing a shared functional pass — or an observer
//! drifting from its live-machine twin — would corrupt every table the
//! repo produces.
//!
//! Invariants checked per scenario:
//!
//! * every applicable per-store backend (virtual memory, hardware
//!   registers incl. the page-protection hybrid, every DISE
//!   organisation, the pure-observation DISE comparators, binary
//!   rewriting) reports **exactly the oracle's user-transition count**;
//! * no backend perturbs architectural state: final slot bytes and
//!   final watched-expression values equal the oracle's for every
//!   backend, single-stepping included;
//! * virtual memory and hardware registers agree on spurious value and
//!   predicate transitions (they classify the same watched stores), and
//!   the DISE comparators agree with virtual memory on both while
//!   reporting **zero spurious address** transitions (byte-exact
//!   bounds); production-injecting DISE reports no spurious transitions
//!   at all;
//! * statement single-stepping, which coalesces changes at statement
//!   boundaries, never reports *more* user transitions than the oracle;
//! * [`ObserverBatch`] results — one functional pass per workload
//!   fanned across **watchpoint sets × observing backends × timing
//!   configs** (every member carries its own set and detector) — equal
//!   each member's private replay **bit for bit** (cycles, transitions,
//!   text bytes), and a member's `Unsupported` error matches its
//!   standalone error.
//!
//! Scenarios come from `dise_workloads::synthetic` (quad-aligned store
//! scripts — the granularity all backends implement identically; see
//! that module on why unaligned straddles are out of scope here), each
//! carrying a *second* watchpoint set for the multi-set observer batch,
//! and shrink to minimal counterexamples via the vendored proptest's
//! shrinker — which now shrinks through `prop_map`/`prop_oneof!` too.

use dise_cpu::{CpuConfig, Executor};
use dise_debug::{
    run_session, Application, BackendKind, DebugError, DiseStrategy, ObserverBatch, Session,
    SessionReport, WatchExpr, WatchState, WatchValue, Watchpoint,
};
use dise_workloads::synthetic::{scenario_sets, StoreOp, WatchSpec, SLOTS};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn any_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0u8..SLOTS).prop_map(|slot| StoreOp::Counter { slot }),
        (0u8..SLOTS, 0u8..8).prop_map(|(slot, k)| StoreOp::Constant { slot, k }),
        (0u8..SLOTS).prop_map(|slot| StoreOp::Zero { slot }),
        (0u8..SLOTS).prop_map(|slot| StoreOp::Scratch { slot }),
    ]
}

/// Watchpoint sets: up to three scalars (optionally conditional, with
/// small predicate constants so counter values collide with them) on
/// slots 0..3, plus at most one range *or* one indirect on slots 3..8 —
/// watched byte sets are pairwise disjoint, and the DISE serial
/// matcher's constant-register budget is never exceeded, so a declined
/// backend is always a *taxonomy* fact, not a resource accident.
fn any_specs() -> impl Strategy<Value = Vec<WatchSpec>> {
    (
        prop::collection::vec(any::<(bool, bool, u8)>(), 3..4),
        0u8..3, // 0: scalars only, 1: + range, 2: indirect first
        (3u8..SLOTS, 1u8..48),
        3u8..SLOTS,
    )
        .prop_map(|(scalars, tail, (first, len), islot)| {
            let mut specs = Vec::new();
            if tail == 2 {
                // DISE's serial matcher requires the indirect watchpoint
                // first (it owns the `dar` register).
                specs.push(WatchSpec::Indirect { slot: islot });
            }
            for (slot, &(present, conditional, k)) in scalars.iter().enumerate() {
                if present {
                    let slot = slot as u8;
                    if conditional {
                        specs.push(WatchSpec::Conditional { slot, k: k % 6 });
                    } else {
                        specs.push(WatchSpec::Scalar { slot });
                    }
                }
            }
            if tail == 1 {
                specs.push(WatchSpec::Range { first, len });
            }
            if specs.is_empty() {
                specs.push(WatchSpec::Scalar { slot: 0 });
            }
            specs
        })
}

/// What an omniscient debugger would report: replay the unmodified
/// application and re-evaluate every watched expression after each
/// store.
struct Oracle {
    user: u64,
    final_slots: Vec<u8>,
    final_values: Vec<WatchValue>,
}

fn oracle(app: &Application, wps: &[Watchpoint]) -> Oracle {
    let prog = app.program().expect("scenario assembles");
    let slots = prog.symbol("slots").expect("slots exists");
    let mut exec = Executor::from_program(&prog, CpuConfig::default());
    let mut watch = WatchState::new(wps, exec.mem());
    let mut user = 0u64;
    while !exec.is_halted() {
        let e = exec.step();
        if e.mem.is_some_and(|m| m.is_store) {
            let (changed, pred_ok) = watch.reevaluate(exec.mem());
            if changed && pred_ok {
                user += 1;
            }
        }
    }
    Oracle {
        user,
        final_slots: exec.mem().read_bytes(slots, 8 * SLOTS as usize),
        final_values: wps.iter().map(|w| w.expr.evaluate(exec.mem())).collect(),
    }
}

/// Make `specs_b` compatible with the primary set's single pointer
/// cell: every indirect spec across both sets must target the same
/// slot, so set B's indirects are retargeted to set A's (or dropped
/// when A has none). An emptied set falls back to one scalar.
fn compatible_second_set(specs: &[WatchSpec], specs_b: &[WatchSpec]) -> Vec<WatchSpec> {
    let a_indirect = specs.iter().find_map(|s| match s {
        WatchSpec::Indirect { slot } => Some(slot % SLOTS),
        _ => None,
    });
    let mut out: Vec<WatchSpec> = specs_b
        .iter()
        .filter_map(|s| match (s, a_indirect) {
            (WatchSpec::Indirect { .. }, Some(slot)) => Some(WatchSpec::Indirect { slot }),
            (WatchSpec::Indirect { .. }, None) => None,
            (other, _) => Some(*other),
        })
        .collect();
    // One pointer cell, one `dar`: keep at most the first indirect,
    // and keep it first (DISE's serial-matcher rule, mirrored here so
    // the set stays valid for any backend).
    if let Some(pos) = out.iter().position(|s| matches!(s, WatchSpec::Indirect { .. })) {
        let ind = out.remove(pos);
        out.retain(|s| !matches!(s, WatchSpec::Indirect { .. }));
        out.insert(0, ind);
    }
    if out.is_empty() {
        out.push(WatchSpec::Scalar { slot: 1 });
    }
    out
}

#[allow(clippy::too_many_lines)]
fn check_scenario(
    iters: u8,
    ops: &[StoreOp],
    specs: &[WatchSpec],
    specs_b: &[WatchSpec],
    heavy: bool,
) -> Result<(), TestCaseError> {
    let specs_b = compatible_second_set(specs, specs_b);
    let (app, mut sets) = scenario_sets(iters, ops, &[specs.to_vec(), specs_b]);
    let wps_b = sets.pop().expect("second set");
    let wps = sets.pop().expect("first set");
    let slots = app.program().expect("assembles").symbol("slots").expect("slots exists");
    let orc = oracle(&app, &wps);
    let cpu = CpuConfig::default();

    let has_indirect = wps.iter().any(|w| matches!(w.expr, WatchExpr::Indirect { .. }));
    let has_range = wps.iter().any(|w| matches!(w.expr, WatchExpr::Range { .. }));
    let single_unconditional_scalar =
        matches!(wps[..], [Watchpoint { expr: WatchExpr::Scalar { .. }, condition: None }]);
    let single_scalar = wps.len() == 1 && matches!(wps[0].expr, WatchExpr::Scalar { .. });

    let mut backends: Vec<BackendKind> = vec![
        BackendKind::VirtualMemory,
        BackendKind::hw4(),
        BackendKind::dise_default(),
        BackendKind::DiseComparators,
    ];
    if single_unconditional_scalar {
        backends.push(BackendKind::BinaryRewrite);
    }
    if heavy {
        // A register-starved hybrid: overflow falls back to page
        // protection, which must classify identically.
        backends.push(BackendKind::HardwareRegisters { registers: 1 });
        if !has_indirect {
            backends.push(BackendKind::Dise(DiseStrategy::bloom(false)));
            backends.push(BackendKind::Dise(DiseStrategy::bloom(true)));
        }
        if single_scalar {
            backends.push(BackendKind::Dise(DiseStrategy::evaluate_inline(true)));
            backends.push(BackendKind::Dise(DiseStrategy::evaluate_inline(false)));
        }
    }

    // ---- Per-store backends vs the oracle -----------------------------
    let mut per_store: Vec<(BackendKind, SessionReport, Executor)> = Vec::new();
    for backend in backends {
        match Session::with_config(&app, wps.clone(), backend, cpu) {
            Ok(s) => {
                let (report, exec) = s.run_with_state();
                prop_assert_eq!(report.error, None, "{:?} must run clean", backend);
                per_store.push((backend, report, exec));
            }
            Err(DebugError::Unsupported { .. }) => {
                let legitimately = match backend {
                    BackendKind::VirtualMemory => has_indirect,
                    BackendKind::HardwareRegisters { .. } => has_indirect || has_range,
                    BackendKind::Dise(s) => {
                        has_indirect && !matches!(s.multi_match, dise_debug::MultiMatch::Serial)
                    }
                    _ => false,
                };
                prop_assert!(legitimately, "{:?} unexpectedly declined the watchpoints", backend);
            }
            Err(e) => prop_assert!(false, "{:?} failed setup: {}", backend, e),
        }
    }
    prop_assert!(!per_store.is_empty(), "at least DISE serial must support every scenario");

    for (backend, report, exec) in &per_store {
        prop_assert_eq!(
            report.transitions.user,
            orc.user,
            "{:?} disagrees with the oracle on user transitions",
            backend
        );
        if let BackendKind::Dise(_) = backend {
            prop_assert_eq!(
                report.transitions.spurious_total(),
                0,
                "{:?} must eliminate spurious transitions",
                backend
            );
        }
        if *backend == BackendKind::DiseComparators {
            prop_assert_eq!(
                report.transitions.spurious_address,
                0,
                "byte-exact comparators cannot trap a store that missed every watched byte"
            );
        }
        prop_assert_eq!(
            exec.mem().read_bytes(slots, 8 * SLOTS as usize),
            orc.final_slots.clone(),
            "{:?} perturbed architectural state",
            backend
        );
        for (i, w) in wps.iter().enumerate() {
            prop_assert_eq!(
                w.expr.evaluate(exec.mem()),
                orc.final_values[i].clone(),
                "{:?} left watchpoint {} at a different value",
                backend,
                i
            );
        }
    }

    // ---- VM vs HW vs comparator spurious classification --------------
    let find = |kind: BackendKind| per_store.iter().find(|(b, ..)| *b == kind);
    if let (Some((_, vm, _)), Some((_, hw, _))) =
        (find(BackendKind::VirtualMemory), find(BackendKind::hw4()))
    {
        prop_assert_eq!(
            vm.transitions.spurious_value,
            hw.transitions.spurious_value,
            "silent stores to watched quads look the same from a page or a comparator"
        );
        prop_assert_eq!(vm.transitions.spurious_predicate, hw.transitions.spurious_predicate);
        prop_assert_eq!(
            hw.transitions.spurious_address,
            0,
            "quad-aligned quad scalars fill their comparator quads exactly"
        );
    }
    if let (Some((_, vm, _)), Some((_, cmp, _))) =
        (find(BackendKind::VirtualMemory), find(BackendKind::DiseComparators))
    {
        // The comparators trap exactly the watched-byte writes the page
        // filter also sees, so the value/predicate split is identical;
        // only the page filter's extra same-page traps (spurious
        // address) differ.
        prop_assert_eq!(vm.transitions.spurious_value, cmp.transitions.spurious_value);
        prop_assert_eq!(vm.transitions.spurious_predicate, cmp.transitions.spurious_predicate);
    }

    // ---- Statement single-stepping (coalescing) ----------------------
    let ss = Session::with_config(&app, wps.clone(), BackendKind::SingleStep, cpu)
        .expect("scenarios carry statement markers");
    let (ss_report, ss_exec) = ss.run_with_state();
    prop_assert_eq!(ss_report.error, None);
    prop_assert!(
        ss_report.transitions.user <= orc.user,
        "boundary coalescing can only merge or delay user events ({} > {})",
        ss_report.transitions.user,
        orc.user
    );
    prop_assert_eq!(
        ss_exec.mem().read_bytes(slots, 8 * SLOTS as usize),
        orc.final_slots.clone(),
        "single-stepping perturbed architectural state"
    );

    // ---- Observer batch == private replay, bit for bit ----------------
    // One functional pass per *workload*: members mix watchpoint sets
    // (the scenario's primary set and an independently generated second
    // set) with backends and timing configs, each member carrying its
    // own detector and value bookkeeping.
    let cheap = CpuConfig { debugger_transition_cost: 5_000, ..CpuConfig::default() };
    let cpus = vec![cpu, cheap];
    let observing = [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::DiseComparators];
    let mut members: Vec<(BackendKind, &Vec<Watchpoint>)> =
        vec![(observing[0], &wps), (observing[1], &wps), (observing[2], &wps_b)];
    if heavy {
        members.push((observing[0], &wps_b));
        members.push((observing[1], &wps_b));
        members.push((observing[2], &wps));
    }
    let mut batch = ObserverBatch::new(&app);
    for (b, set) in &members {
        batch.member(*b, (*set).clone(), cpus.clone());
    }
    let results = match batch.run() {
        Ok(results) => results,
        Err(e) => return Err(TestCaseError::fail(format!("observer batch setup failed: {e}"))),
    };
    for ((backend, set), result) in members.into_iter().zip(results) {
        match result {
            Ok(reports) => {
                prop_assert_eq!(reports.len(), cpus.len());
                for (c, got) in cpus.iter().zip(reports) {
                    let lone = run_session(&app, set.clone(), backend, *c)
                        .expect("member ran batched, must run alone");
                    prop_assert_eq!(got.run, lone.run, "{:?}/{:?} cycles diverged", backend, set);
                    prop_assert_eq!(&got.transitions, &lone.transitions, "{:?}", backend);
                    prop_assert_eq!(got.error, lone.error, "{:?}", backend);
                    prop_assert_eq!(got.text_bytes, lone.text_bytes, "{:?}", backend);
                }
            }
            Err(DebugError::Unsupported { .. }) => {
                prop_assert!(
                    matches!(
                        run_session(&app, set.clone(), backend, cpu),
                        Err(DebugError::Unsupported { .. })
                    ),
                    "{:?}: batched Unsupported must match the standalone error",
                    backend
                );
            }
            Err(e) => prop_assert!(false, "{:?} member failed: {}", backend, e),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The always-on slice: two dozen randomized scenarios through the
    /// standard backend set.
    #[test]
    fn backends_agree_on_randomized_scenarios(
        iters in 1u8..6,
        ops in prop::collection::vec(any_store_op(), 1..6),
        specs in any_specs(),
        specs_b in any_specs(),
    ) {
        check_scenario(iters, &ops, &specs, &specs_b, false)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The CI-scale sweep: more cases, plus the Bloom and inline DISE
    /// organisations and a register-starved hardware hybrid.
    #[test]
    #[ignore = "hundreds of sessions (~1 min dev profile); CI runs it with --include-ignored"]
    fn backends_agree_on_many_randomized_scenarios(
        iters in 1u8..8,
        ops in prop::collection::vec(any_store_op(), 1..8),
        specs in any_specs(),
        specs_b in any_specs(),
    ) {
        check_scenario(iters, &ops, &specs, &specs_b, true)?;
    }
}

/// Fixed regression scenarios, independent of the random stream: the
/// shapes most likely to diverge (predicate collisions with the
/// counter, a range with unwatched tail bytes, a moving-value indirect,
/// silent-store pruning), each with a deliberately different second
/// watchpoint set for the multi-set observer batch.
#[test]
fn pinned_scenarios_conform() {
    type Case = (u8, &'static [StoreOp], &'static [WatchSpec], &'static [WatchSpec]);
    let cases: &[Case] = &[
        // Conditional whose constant collides with some counter values;
        // the second set watches the other store as a plain scalar.
        (
            5,
            &[StoreOp::Counter { slot: 0 }, StoreOp::Constant { slot: 1, k: 3 }],
            &[WatchSpec::Conditional { slot: 0, k: 3 }, WatchSpec::Scalar { slot: 1 }],
            &[WatchSpec::Scalar { slot: 0 }],
        ),
        // Range with a 5-byte unwatched tail in its last quad; second
        // set watches a disjoint slot that never changes.
        (
            4,
            &[
                StoreOp::Counter { slot: 4 },
                StoreOp::Counter { slot: 6 },
                StoreOp::Zero { slot: 5 },
            ],
            &[WatchSpec::Range { first: 4, len: 19 }],
            &[WatchSpec::Scalar { slot: 0 }],
        ),
        // Indirect (DISE, comparators and single-stepping) over a
        // counter slot; the second set aims the comparators at the same
        // moving value through the same pointer cell.
        (
            6,
            &[StoreOp::Counter { slot: 5 }, StoreOp::Constant { slot: 0, k: 9 }],
            &[WatchSpec::Indirect { slot: 5 }],
            &[WatchSpec::Indirect { slot: 5 }, WatchSpec::Scalar { slot: 0 }],
        ),
        // Silent stores: constants rewriting their own value; the
        // second set overlaps the first (shared slot 3).
        (
            6,
            &[StoreOp::Constant { slot: 2, k: 7 }, StoreOp::Zero { slot: 3 }],
            &[WatchSpec::Scalar { slot: 2 }, WatchSpec::Scalar { slot: 3 }],
            &[WatchSpec::Scalar { slot: 3 }],
        ),
        // True negatives: off-page scratch traffic around a watched slot
        // must produce no transition anywhere — not even through the
        // page filter; the second set watches a range the scratch
        // stores must not disturb either.
        (
            5,
            &[
                StoreOp::Scratch { slot: 0 },
                StoreOp::Counter { slot: 1 },
                StoreOp::Scratch { slot: 7 },
            ],
            &[WatchSpec::Scalar { slot: 1 }],
            &[WatchSpec::Range { first: 0, len: 17 }],
        ),
    ];
    for (i, (iters, ops, specs, specs_b)) in cases.iter().enumerate() {
        check_scenario(*iters, ops, specs, specs_b, true)
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
}
