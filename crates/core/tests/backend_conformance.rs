//! Cross-backend differential conformance suite.
//!
//! The paper's entire evaluation rests on one premise: the five
//! watchpoint implementations are *semantically interchangeable* — they
//! report the same user-visible debugging events and differ only in
//! overhead. This suite pits all applicable backends against each other
//! (and against an omniscient per-store oracle) on randomized
//! scenarios, and is the safety net for observer batching: a perturbing
//! backend silently reusing a shared functional pass — or an observer
//! drifting from its live-machine twin — would corrupt every table the
//! repo produces.
//!
//! Invariants checked per scenario:
//!
//! * every applicable per-store backend reports **exactly its
//!   granularity family's oracle count**: byte-accurate backends
//!   (virtual memory, hardware registers incl. the page-protection
//!   hybrid, the pure-observation DISE comparators, inline-evaluating
//!   DISE) match the omniscient per-store oracle, while base-address
//!   matchers (serial and Bloom match-address DISE, binary rewriting)
//!   match a stateful model of the paper's handler — which keys on the
//!   store's *base* quad and therefore, by design, misses stores that
//!   straddle into a watched quad from below (and can then trap a
//!   later silent store against its stale previous-value cell);
//! * no backend perturbs architectural state: final slot bytes and
//!   final watched-expression values equal the oracle's for every
//!   backend, single-stepping included;
//! * virtual memory and hardware registers agree on spurious value and
//!   predicate transitions (they classify the same watched stores), and
//!   the DISE comparators agree with virtual memory on both while
//!   reporting **zero spurious address** transitions (byte-exact
//!   bounds); production-injecting DISE reports no spurious transitions
//!   at all;
//! * statement single-stepping, which coalesces changes at statement
//!   boundaries, never reports *more* user transitions than the oracle;
//! * [`ObserverBatch`] results — one functional pass per workload
//!   fanned across **watchpoint sets × observing backends × timing
//!   configs** (every member carries its own set and detector) — equal
//!   each member's private replay **bit for bit** (cycles, transitions,
//!   text bytes), and a member's `Unsupported` error matches its
//!   standalone error;
//! * the persistent trace layer: a recorded trace reads back the live
//!   `Exec` stream **record for record**, and the same batch run
//!   entirely from the stored trace ([`ObserverBatch::run_from_trace`],
//!   zero functional passes) equals the live batch bit for bit.
//!
//! Scenarios come from `dise_workloads::synthetic` — store scripts
//! spanning quad-aligned quads, single bytes, straddling longwords and
//! quads straddling into a watched quad from below, so the
//! base-address-vs-byte-granularity split is *exercised*, not carved
//! out — each carrying a *second* watchpoint set for the multi-set
//! observer batch, and shrink to minimal counterexamples via the
//! vendored proptest's shrinker — which now shrinks through
//! `prop_map`/`prop_oneof!` too.

use dise_cpu::{CpuConfig, Executor, TraceReader};
use dise_debug::{
    record_session, run_session, Application, BackendKind, CheckKind, DebugError, DiseStrategy,
    ObserverBatch, Session, SessionReport, WatchExpr, WatchState, WatchValue, Watchpoint,
};
use dise_mem::Memory;
use dise_workloads::synthetic::{scenario_sets, StoreOp, WatchSpec, SLOTS};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A unique trace path per call: proptest cases run concurrently across
/// test threads, and a shared path would interleave recordings.
fn scratch_trace_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dise-conformance-{}-{}.dtrc",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn any_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0u8..SLOTS).prop_map(|slot| StoreOp::Counter { slot }),
        (0u8..SLOTS, 0u8..8).prop_map(|(slot, k)| StoreOp::Constant { slot, k }),
        (0u8..SLOTS).prop_map(|slot| StoreOp::Zero { slot }),
        (0u8..SLOTS).prop_map(|slot| StoreOp::Scratch { slot }),
        (0u8..SLOTS, 0u8..8, any::<u8>()).prop_map(|(slot, off, k)| StoreOp::Byte { slot, off, k }),
        (0u8..SLOTS - 1, 0u8..8).prop_map(|(slot, off)| StoreOp::Long { slot, off }),
        (1u8..SLOTS, 1u8..8).prop_map(|(slot, back)| StoreOp::StraddleBelow { slot, back }),
    ]
}

/// Watchpoint sets: up to three scalars (optionally conditional, with
/// small predicate constants so counter values collide with them) on
/// slots 0..3, plus at most one range *or* one indirect on slots 3..8 —
/// watched byte sets are pairwise disjoint, and the DISE serial
/// matcher's constant-register budget is never exceeded, so a declined
/// backend is always a *taxonomy* fact, not a resource accident.
fn any_specs() -> impl Strategy<Value = Vec<WatchSpec>> {
    (
        prop::collection::vec(any::<(bool, bool, u8)>(), 3..4),
        0u8..3, // 0: scalars only, 1: + range, 2: indirect first
        (3u8..SLOTS, 1u8..48),
        3u8..SLOTS,
    )
        .prop_map(|(scalars, tail, (first, len), islot)| {
            let mut specs = Vec::new();
            if tail == 2 {
                // DISE's serial matcher requires the indirect watchpoint
                // first (it owns the `dar` register).
                specs.push(WatchSpec::Indirect { slot: islot });
            }
            for (slot, &(present, conditional, k)) in scalars.iter().enumerate() {
                if present {
                    let slot = slot as u8;
                    if conditional {
                        specs.push(WatchSpec::Conditional { slot, k: k % 6 });
                    } else {
                        specs.push(WatchSpec::Scalar { slot });
                    }
                }
            }
            if tail == 1 {
                specs.push(WatchSpec::Range { first, len });
            }
            if specs.is_empty() {
                specs.push(WatchSpec::Scalar { slot: 0 });
            }
            specs
        })
}

/// What an omniscient debugger would report: replay the unmodified
/// application and re-evaluate every watched expression after each
/// store (`user`), alongside what the paper's base-address-matching
/// handler would report (`dise_user`) — the two counts diverge exactly
/// when a store's *base* quad and its written bytes disagree about
/// watched coverage.
struct Oracle {
    user: u64,
    dise_user: u64,
    final_slots: Vec<u8>,
    final_values: Vec<WatchValue>,
}

/// Per-watchpoint state of the DISE match-address handler model: a
/// faithful, memory-level simulation of the generated handler in
/// `backend/dise.rs` (previous-value cells, the indirect target cell,
/// full-quad range shadows with boundary masks). The Bloom filters are
/// deliberately absent — they only gate *handler invocation* and are a
/// superset of the handler's own gates, so user events depend on the
/// handler alone.
enum DiseCell {
    Scalar { addr: u64, width: u64, cond: Option<u64>, prev: u64 },
    Indirect { ptr: u64, width: u64, target: u64, prev: u64 },
    Range { lo: u64, len: u64, shadow: Vec<u64> },
}

fn dise_cells(wps: &[Watchpoint], mem: &Memory) -> Vec<DiseCell> {
    wps.iter()
        .map(|w| match w.expr {
            WatchExpr::Scalar { addr, width } => DiseCell::Scalar {
                addr,
                width: width.bytes(),
                cond: w.condition.map(|c| c.equals),
                prev: mem.read_u(addr, width.bytes()),
            },
            WatchExpr::Indirect { ptr, width } => {
                let target = mem.read_u(ptr, 8);
                DiseCell::Indirect {
                    ptr,
                    width: width.bytes(),
                    target,
                    prev: mem.read_u(target, width.bytes()),
                }
            }
            WatchExpr::Range { base, len } => {
                let lo_quad = base & !7;
                let hi_quad = (base + len + 7) & !7;
                DiseCell::Range {
                    lo: base,
                    len,
                    shadow: (lo_quad..hi_quad).step_by(8).map(|q| mem.read_u(q, 8)).collect(),
                }
            }
        })
        .collect()
}

/// One store through the handler model. Returns true when the handler
/// traps (a user transition). The first watchpoint whose gate passes
/// consumes the store — trap or not — exactly as every gate-passing
/// path in the generated handler branches to `__done`.
fn dise_store(cells: &mut [DiseCell], mem: &Memory, raw: u64) -> bool {
    let rq = raw & !7;
    for cell in cells {
        match cell {
            DiseCell::Scalar { addr, width, cond, prev } => {
                if rq != *addr & !7 {
                    continue;
                }
                let cur = mem.read_u(*addr, *width);
                if cur == *prev {
                    return false; // silent: consumed without a trap
                }
                *prev = cur;
                return cond.is_none_or(|k| cur == k);
            }
            DiseCell::Indirect { ptr, width, target, prev } => {
                if rq == *ptr & !7 {
                    // The pointer cell itself was written: the handler
                    // re-dereferences, retargets and silently adopts
                    // the new target's value as the reference.
                    *target = mem.read_u(*ptr, 8);
                    *prev = mem.read_u(*target, *width);
                    return false;
                }
                if rq != *target & !7 {
                    continue;
                }
                let cur = mem.read_u(*target, *width);
                if cur == *prev {
                    return false;
                }
                *prev = cur;
                return true;
            }
            DiseCell::Range { lo, len, shadow } => {
                // The gate is the *raw base* in [lo, lo+len): a store
                // straddling in from below never reaches the shadows.
                if raw < *lo || raw >= *lo + *len {
                    continue;
                }
                let first_quad = *lo & !7;
                let end = *lo + *len;
                let last_quad = (end - 1) & !7;
                let lo_pad = *lo % 8;
                let hi_pad = last_quad + 8 - end;
                let mut tripped = false;
                let mut q = rq;
                // The store's base quad, then its successor when the
                // store can spill into it and it is still watched.
                for _ in 0..2 {
                    if q > last_quad {
                        break;
                    }
                    let cur = mem.read_u(q, 8);
                    let idx = ((q - first_quad) / 8) as usize;
                    let mut diff = cur ^ shadow[idx];
                    if q == first_quad && lo_pad > 0 {
                        diff &= u64::MAX << (8 * lo_pad);
                    }
                    if q == last_quad && hi_pad > 0 {
                        diff &= u64::MAX >> (8 * hi_pad);
                    }
                    if diff != 0 {
                        // The handler stores the full unmasked quad.
                        shadow[idx] = cur;
                        tripped = true;
                    }
                    q += 8;
                }
                return tripped;
            }
        }
    }
    false
}

fn oracle(app: &Application, wps: &[Watchpoint]) -> Oracle {
    let prog = app.program().expect("scenario assembles");
    let slots = prog.symbol("slots").expect("slots exists");
    let mut exec = Executor::from_program(&prog, CpuConfig::default());
    let mut watch = WatchState::new(wps, exec.mem());
    let mut cells = dise_cells(wps, exec.mem());
    let mut user = 0u64;
    let mut dise_user = 0u64;
    while !exec.is_halted() {
        let e = exec.step();
        if let Some(m) = e.mem.filter(|m| m.is_store) {
            if dise_store(&mut cells, exec.mem(), m.addr) {
                dise_user += 1;
            }
            let (changed, pred_ok) = watch.reevaluate(exec.mem());
            if changed && pred_ok {
                user += 1;
            }
        }
    }
    Oracle {
        user,
        dise_user,
        final_slots: exec.mem().read_bytes(slots, 8 * SLOTS as usize),
        final_values: wps.iter().map(|w| w.expr.evaluate(exec.mem())).collect(),
    }
}

/// Make `specs_b` compatible with the primary set's single pointer
/// cell: every indirect spec across both sets must target the same
/// slot, so set B's indirects are retargeted to set A's (or dropped
/// when A has none). An emptied set falls back to one scalar.
fn compatible_second_set(specs: &[WatchSpec], specs_b: &[WatchSpec]) -> Vec<WatchSpec> {
    let a_indirect = specs.iter().find_map(|s| match s {
        WatchSpec::Indirect { slot } => Some(slot % SLOTS),
        _ => None,
    });
    let mut out: Vec<WatchSpec> = specs_b
        .iter()
        .filter_map(|s| match (s, a_indirect) {
            (WatchSpec::Indirect { .. }, Some(slot)) => Some(WatchSpec::Indirect { slot }),
            (WatchSpec::Indirect { .. }, None) => None,
            (other, _) => Some(*other),
        })
        .collect();
    // One pointer cell, one `dar`: keep at most the first indirect,
    // and keep it first (DISE's serial-matcher rule, mirrored here so
    // the set stays valid for any backend).
    if let Some(pos) = out.iter().position(|s| matches!(s, WatchSpec::Indirect { .. })) {
        let ind = out.remove(pos);
        out.retain(|s| !matches!(s, WatchSpec::Indirect { .. }));
        out.insert(0, ind);
    }
    if out.is_empty() {
        out.push(WatchSpec::Scalar { slot: 1 });
    }
    out
}

#[allow(clippy::too_many_lines)]
fn check_scenario(
    iters: u8,
    ops: &[StoreOp],
    specs: &[WatchSpec],
    specs_b: &[WatchSpec],
    heavy: bool,
) -> Result<(), TestCaseError> {
    let specs_b = compatible_second_set(specs, specs_b);
    let (app, mut sets) = scenario_sets(iters, ops, &[specs.to_vec(), specs_b]);
    let wps_b = sets.pop().expect("second set");
    let wps = sets.pop().expect("first set");
    let slots = app.program().expect("assembles").symbol("slots").expect("slots exists");
    let orc = oracle(&app, &wps);
    let cpu = CpuConfig::default();

    let has_indirect = wps.iter().any(|w| matches!(w.expr, WatchExpr::Indirect { .. }));
    let has_range = wps.iter().any(|w| matches!(w.expr, WatchExpr::Range { .. }));
    let single_unconditional_scalar =
        matches!(wps[..], [Watchpoint { expr: WatchExpr::Scalar { .. }, condition: None }]);
    let single_scalar = wps.len() == 1 && matches!(wps[0].expr, WatchExpr::Scalar { .. });

    let mut backends: Vec<BackendKind> = vec![
        BackendKind::VirtualMemory,
        BackendKind::hw4(),
        BackendKind::dise_default(),
        BackendKind::DiseComparators,
    ];
    if single_unconditional_scalar {
        backends.push(BackendKind::BinaryRewrite);
    }
    if heavy {
        // A register-starved hybrid: overflow falls back to page
        // protection, which must classify identically.
        backends.push(BackendKind::HardwareRegisters { registers: 1 });
        if !has_indirect {
            backends.push(BackendKind::Dise(DiseStrategy::bloom(false)));
            backends.push(BackendKind::Dise(DiseStrategy::bloom(true)));
        }
        if single_scalar {
            backends.push(BackendKind::Dise(DiseStrategy::evaluate_inline(true)));
            backends.push(BackendKind::Dise(DiseStrategy::evaluate_inline(false)));
        }
    }

    // ---- Per-store backends vs the oracle -----------------------------
    let mut per_store: Vec<(BackendKind, SessionReport, Executor)> = Vec::new();
    for backend in backends {
        match Session::with_config(&app, wps.clone(), backend, cpu) {
            Ok(s) => {
                let (report, exec) = s.run_with_state();
                prop_assert_eq!(report.error, None, "{:?} must run clean", backend);
                per_store.push((backend, report, exec));
            }
            Err(DebugError::Unsupported { .. }) => {
                let legitimately = match backend {
                    BackendKind::VirtualMemory => has_indirect,
                    BackendKind::HardwareRegisters { .. } => has_indirect || has_range,
                    BackendKind::Dise(s) => {
                        has_indirect && !matches!(s.multi_match, dise_debug::MultiMatch::Serial)
                    }
                    _ => false,
                };
                prop_assert!(legitimately, "{:?} unexpectedly declined the watchpoints", backend);
            }
            Err(e) => prop_assert!(false, "{:?} failed setup: {}", backend, e),
        }
    }
    prop_assert!(!per_store.is_empty(), "at least DISE serial must support every scenario");

    for (backend, report, exec) in &per_store {
        // The granularity split: serial/Bloom match-address DISE and
        // binary rewriting gate on the store's *base* quad (the
        // paper's replacement sequences match the store's address, not
        // its footprint), so they answer to the handler model; every
        // other per-store backend traps on byte overlap and answers to
        // the omniscient oracle. Inline-evaluating DISE re-evaluates
        // the watched value on every store, so it is byte-accurate
        // despite being production-injecting.
        let base_address_matcher = match backend {
            BackendKind::Dise(s) => s.check == CheckKind::MatchAddressCall,
            BackendKind::BinaryRewrite => true,
            _ => false,
        };
        let family_user = if base_address_matcher { orc.dise_user } else { orc.user };
        prop_assert_eq!(
            report.transitions.user,
            family_user,
            "{:?} disagrees with its granularity family's oracle on user transitions",
            backend
        );
        if let BackendKind::Dise(_) = backend {
            prop_assert_eq!(
                report.transitions.spurious_total(),
                0,
                "{:?} must eliminate spurious transitions",
                backend
            );
        }
        if *backend == BackendKind::DiseComparators {
            prop_assert_eq!(
                report.transitions.spurious_address,
                0,
                "byte-exact comparators cannot trap a store that missed every watched byte"
            );
        }
        prop_assert_eq!(
            exec.mem().read_bytes(slots, 8 * SLOTS as usize),
            orc.final_slots.clone(),
            "{:?} perturbed architectural state",
            backend
        );
        for (i, w) in wps.iter().enumerate() {
            prop_assert_eq!(
                w.expr.evaluate(exec.mem()),
                orc.final_values[i].clone(),
                "{:?} left watchpoint {} at a different value",
                backend,
                i
            );
        }
    }

    // ---- VM vs HW vs comparator spurious classification --------------
    let find = |kind: BackendKind| per_store.iter().find(|(b, ..)| *b == kind);
    if let (Some((_, vm, _)), Some((_, hw, _))) =
        (find(BackendKind::VirtualMemory), find(BackendKind::hw4()))
    {
        prop_assert_eq!(
            vm.transitions.spurious_value,
            hw.transitions.spurious_value,
            "silent stores to watched quads look the same from a page or a comparator"
        );
        prop_assert_eq!(vm.transitions.spurious_predicate, hw.transitions.spurious_predicate);
        prop_assert_eq!(
            hw.transitions.spurious_address,
            0,
            "scalar watches cover every byte of their comparator quads, so any store \
             whose footprint reaches a comparator quad — sub-quad and straddling \
             stores included — wrote a watched byte"
        );
    }
    if let (Some((_, vm, _)), Some((_, cmp, _))) =
        (find(BackendKind::VirtualMemory), find(BackendKind::DiseComparators))
    {
        // The comparators trap exactly the watched-byte writes the page
        // filter also sees, so the value/predicate split is identical;
        // only the page filter's extra same-page traps (spurious
        // address) differ.
        prop_assert_eq!(vm.transitions.spurious_value, cmp.transitions.spurious_value);
        prop_assert_eq!(vm.transitions.spurious_predicate, cmp.transitions.spurious_predicate);
    }

    // ---- Statement single-stepping (coalescing) ----------------------
    let ss = Session::with_config(&app, wps.clone(), BackendKind::SingleStep, cpu)
        .expect("scenarios carry statement markers");
    let (ss_report, ss_exec) = ss.run_with_state();
    prop_assert_eq!(ss_report.error, None);
    prop_assert!(
        ss_report.transitions.user <= orc.user,
        "boundary coalescing can only merge or delay user events ({} > {})",
        ss_report.transitions.user,
        orc.user
    );
    prop_assert_eq!(
        ss_exec.mem().read_bytes(slots, 8 * SLOTS as usize),
        orc.final_slots.clone(),
        "single-stepping perturbed architectural state"
    );

    // ---- Observer batch == private replay, bit for bit ----------------
    // One functional pass per *workload*: members mix watchpoint sets
    // (the scenario's primary set and an independently generated second
    // set) with backends and timing configs, each member carrying its
    // own detector and value bookkeeping.
    let cheap = CpuConfig { debugger_transition_cost: 5_000, ..CpuConfig::default() };
    let cpus = vec![cpu, cheap];
    let observing = [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::DiseComparators];
    let mut members: Vec<(BackendKind, &Vec<Watchpoint>)> =
        vec![(observing[0], &wps), (observing[1], &wps), (observing[2], &wps_b)];
    if heavy {
        members.push((observing[0], &wps_b));
        members.push((observing[1], &wps_b));
        members.push((observing[2], &wps));
    }
    let mut batch = ObserverBatch::new(&app);
    for (b, set) in &members {
        batch.member(*b, (*set).clone(), cpus.clone());
    }
    let results = match batch.run() {
        Ok(results) => results,
        Err(e) => return Err(TestCaseError::fail(format!("observer batch setup failed: {e}"))),
    };

    // ---- Persistent trace == live stream == live batch, bit for bit ---
    // Record the scenario once, then (a) read the stored stream back
    // against a live machine record for record, and (b) run the whole
    // observer batch from the file — zero functional passes — and
    // demand the exact results the live batch produced.
    let trace = scratch_trace_path();
    record_session(&app, &trace).map_err(|e| TestCaseError::fail(format!("recording: {e}")))?;
    let mut reader = TraceReader::open(&trace, None)
        .map_err(|e| TestCaseError::fail(format!("fresh trace rejected: {e}")))?;
    let prog = app.program().expect("assembles");
    let mut live = Executor::from_program(&prog, cpu);
    let mut position = 0u64;
    while !live.is_halted() {
        let want = live.step();
        let got = reader
            .next()
            .map_err(|e| TestCaseError::fail(format!("trace died at record {position}: {e}")))?;
        prop_assert_eq!(got, Some(want), "stored stream diverged at record {}", position);
        position += 1;
    }
    let trailing =
        reader.next().map_err(|e| TestCaseError::fail(format!("trace end rejected: {e}")))?;
    prop_assert_eq!(trailing, None, "stored stream outlived the live machine");

    let mut replayed = ObserverBatch::new(&app);
    for (b, set) in &members {
        replayed.member(*b, (*set).clone(), cpus.clone());
    }
    let replayed = replayed
        .run_from_trace(&trace)
        .map_err(|e| TestCaseError::fail(format!("trace replay rejected: {e}")))?;
    prop_assert_eq!(
        &replayed,
        &results,
        "a batch replayed from the stored trace must equal the live batch bit for bit"
    );
    let _ = std::fs::remove_file(&trace);

    for ((backend, set), result) in members.into_iter().zip(results) {
        match result {
            Ok(reports) => {
                prop_assert_eq!(reports.len(), cpus.len());
                for (c, got) in cpus.iter().zip(reports) {
                    let lone = run_session(&app, set.clone(), backend, *c)
                        .expect("member ran batched, must run alone");
                    prop_assert_eq!(got.run, lone.run, "{:?}/{:?} cycles diverged", backend, set);
                    prop_assert_eq!(&got.transitions, &lone.transitions, "{:?}", backend);
                    prop_assert_eq!(got.error, lone.error, "{:?}", backend);
                    prop_assert_eq!(got.text_bytes, lone.text_bytes, "{:?}", backend);
                }
            }
            Err(DebugError::Unsupported { .. }) => {
                prop_assert!(
                    matches!(
                        run_session(&app, set.clone(), backend, cpu),
                        Err(DebugError::Unsupported { .. })
                    ),
                    "{:?}: batched Unsupported must match the standalone error",
                    backend
                );
            }
            Err(e) => prop_assert!(false, "{:?} member failed: {}", backend, e),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The always-on slice: two dozen randomized scenarios through the
    /// standard backend set.
    #[test]
    fn backends_agree_on_randomized_scenarios(
        iters in 1u8..6,
        ops in prop::collection::vec(any_store_op(), 1..6),
        specs in any_specs(),
        specs_b in any_specs(),
    ) {
        check_scenario(iters, &ops, &specs, &specs_b, false)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The CI-scale sweep: more cases, plus the Bloom and inline DISE
    /// organisations and a register-starved hardware hybrid.
    #[test]
    #[ignore = "hundreds of sessions (~1 min dev profile); CI runs it with --include-ignored"]
    fn backends_agree_on_many_randomized_scenarios(
        iters in 1u8..8,
        ops in prop::collection::vec(any_store_op(), 1..8),
        specs in any_specs(),
        specs_b in any_specs(),
    ) {
        check_scenario(iters, &ops, &specs, &specs_b, true)?;
    }
}

/// Fixed regression scenarios, independent of the random stream: the
/// shapes most likely to diverge (predicate collisions with the
/// counter, a range with unwatched tail bytes, a moving-value indirect,
/// silent-store pruning), each with a deliberately different second
/// watchpoint set for the multi-set observer batch.
#[test]
fn pinned_scenarios_conform() {
    type Case = (u8, &'static [StoreOp], &'static [WatchSpec], &'static [WatchSpec]);
    let cases: &[Case] = &[
        // Conditional whose constant collides with some counter values;
        // the second set watches the other store as a plain scalar.
        (
            5,
            &[StoreOp::Counter { slot: 0 }, StoreOp::Constant { slot: 1, k: 3 }],
            &[WatchSpec::Conditional { slot: 0, k: 3 }, WatchSpec::Scalar { slot: 1 }],
            &[WatchSpec::Scalar { slot: 0 }],
        ),
        // Range with a 5-byte unwatched tail in its last quad; second
        // set watches a disjoint slot that never changes.
        (
            4,
            &[
                StoreOp::Counter { slot: 4 },
                StoreOp::Counter { slot: 6 },
                StoreOp::Zero { slot: 5 },
            ],
            &[WatchSpec::Range { first: 4, len: 19 }],
            &[WatchSpec::Scalar { slot: 0 }],
        ),
        // Indirect (DISE, comparators and single-stepping) over a
        // counter slot; the second set aims the comparators at the same
        // moving value through the same pointer cell.
        (
            6,
            &[StoreOp::Counter { slot: 5 }, StoreOp::Constant { slot: 0, k: 9 }],
            &[WatchSpec::Indirect { slot: 5 }],
            &[WatchSpec::Indirect { slot: 5 }, WatchSpec::Scalar { slot: 0 }],
        ),
        // Silent stores: constants rewriting their own value; the
        // second set overlaps the first (shared slot 3).
        (
            6,
            &[StoreOp::Constant { slot: 2, k: 7 }, StoreOp::Zero { slot: 3 }],
            &[WatchSpec::Scalar { slot: 2 }, WatchSpec::Scalar { slot: 3 }],
            &[WatchSpec::Scalar { slot: 3 }],
        ),
        // True negatives: off-page scratch traffic around a watched slot
        // must produce no transition anywhere — not even through the
        // page filter; the second set watches a range the scratch
        // stores must not disturb either.
        (
            5,
            &[
                StoreOp::Scratch { slot: 0 },
                StoreOp::Counter { slot: 1 },
                StoreOp::Scratch { slot: 7 },
            ],
            &[WatchSpec::Scalar { slot: 1 }],
            &[WatchSpec::Range { first: 0, len: 17 }],
        ),
        // Sub-quad stores that never straddle: a byte store's base quad
        // is its only quad, so both granularity families agree; the
        // repeated byte is silent after the first iteration.
        (
            4,
            &[
                StoreOp::Byte { slot: 1, off: 3, k: 5 },
                StoreOp::Byte { slot: 1, off: 3, k: 5 },
                StoreOp::Counter { slot: 0 },
            ],
            &[WatchSpec::Scalar { slot: 1 }, WatchSpec::Conditional { slot: 0, k: 2 }],
            &[WatchSpec::Range { first: 1, len: 4 }],
        ),
        // Straddles against a range: the longword starts inside the
        // range (gate passes, both quads checked and clipped); the
        // quad starting below the range reaches watched bytes that
        // only byte-accurate backends may report.
        (
            5,
            &[
                StoreOp::Counter { slot: 4 },
                StoreOp::Long { slot: 4, off: 6 },
                StoreOp::StraddleBelow { slot: 4, back: 3 },
            ],
            &[WatchSpec::Range { first: 4, len: 19 }],
            &[WatchSpec::Scalar { slot: 4 }],
        ),
        // A straddle into an indirectly watched quad: the pointer's
        // target quad is hit from below, so the serial matcher's `dar`
        // never fires while byte-accurate backends see the bytes move.
        (
            4,
            &[StoreOp::Counter { slot: 5 }, StoreOp::StraddleBelow { slot: 5, back: 4 }],
            &[WatchSpec::Indirect { slot: 5 }],
            &[WatchSpec::Scalar { slot: 5 }],
        ),
    ];
    for (i, (iters, ops, specs, specs_b)) in cases.iter().enumerate() {
        check_scenario(*iters, ops, specs, specs_b, true)
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
}

/// The comparator file holds 16 bound-register pairs: a 17-scalar set
/// must be rejected **loudly** at setup — by the live session and by a
/// batch member alike — naming the spill point, and an over-capacity
/// batch member must not cost its at-capacity siblings the shared
/// functional pass.
#[test]
fn comparator_capacity_overflow_is_loud_and_member_isolated() {
    let ops = [StoreOp::Counter { slot: 0 }];
    let specs17: Vec<WatchSpec> = (0..17).map(|i| WatchSpec::Scalar { slot: i % SLOTS }).collect();
    let specs16: Vec<WatchSpec> = (0..16).map(|i| WatchSpec::Scalar { slot: i % SLOTS }).collect();
    let (app, mut sets) = scenario_sets(3, &ops, &[specs17, specs16]);
    let wps16 = sets.pop().expect("second set");
    let wps17 = sets.pop().expect("first set");
    let cpu = CpuConfig::default();

    let err = Session::with_config(&app, wps17.clone(), BackendKind::DiseComparators, cpu)
        .map(|_| ())
        .unwrap_err();
    match err {
        DebugError::Unsupported { backend, reason } => {
            assert_eq!(backend, "dise-comparators");
            assert!(
                reason.contains("17 bound-register pairs needed, 16 available"),
                "the error must name the spill point: {reason}"
            );
        }
        e => panic!("expected Unsupported, got {e}"),
    }

    let report =
        run_session(&app, wps16.clone(), BackendKind::DiseComparators, cpu).expect("at capacity");
    assert_eq!(report.error, None, "16 pairs fill the file exactly and run clean");

    let mut batch = ObserverBatch::new(&app);
    batch.member(BackendKind::DiseComparators, wps17, vec![cpu]);
    batch.member(BackendKind::DiseComparators, wps16, vec![cpu]);
    let mut results = batch.run().expect("batch setup survives a member-level decline");
    let at_capacity = results.pop().expect("two members in, two results out");
    let over_capacity = results.pop().expect("two members in, two results out");
    assert!(
        matches!(over_capacity, Err(DebugError::Unsupported { .. })),
        "the 17-pair member declines exactly as it does standalone"
    );
    let reports = at_capacity.expect("the sibling keeps the shared pass");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].error, None);
}

/// The pinned divergence: a quad store whose base sits below a watched
/// quad's boundary changes watched bytes that base-address matching
/// cannot see. Byte-accurate backends report every change; the handler
/// model traps once and then goes stale (the straddle resets the slot
/// behind its previous-value cell's back, so the next full-quad store
/// looks silent). `check_scenario` proves every live backend matches
/// its family's count; the direct oracle assertions pin the counts —
/// and the divergence — themselves.
#[test]
fn straddling_stores_split_the_granularity_families() {
    let ops = [StoreOp::Constant { slot: 4, k: 9 }, StoreOp::StraddleBelow { slot: 4, back: 3 }];
    let specs = [WatchSpec::Scalar { slot: 4 }];
    check_scenario(3, &ops, &specs, &[WatchSpec::Scalar { slot: 0 }], true)
        .unwrap_or_else(|e| panic!("{e}"));

    let (app, mut sets) = scenario_sets(3, &ops, &[specs.to_vec()]);
    let wps = sets.pop().expect("one set");
    let orc = oracle(&app, &wps);
    assert_eq!(orc.user, 6, "byte-accurate: 0→9 and 9→0 every iteration");
    assert_eq!(
        orc.dise_user, 1,
        "base-address matching sees only the first 0→9; the straddle is invisible and \
         leaves the previous-value cell stale at 9, silencing later constant stores"
    );
}
