//! Loud-rejection tests for the persistent trace store: a stored
//! `Exec` stream that is stale, corrupt, truncated, or the wrong
//! format version must fail **before** any member observes a single
//! record — each failure class with its own [`TraceError`] variant, so
//! callers (and error messages) can tell "re-record, the kernel
//! changed" from "the file is damaged" from "wrong tool version".
//!
//! Every test damages a freshly recorded, provably good trace — the
//! happy path is asserted first, so a failure here is the rejection
//! logic, never the recording.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dise_asm::{parse_asm, Layout};
use dise_cpu::CpuConfig;
use dise_debug::{
    record_session, replay_from_trace, Application, BackendKind, DebugError, TraceError, WatchExpr,
    Watchpoint,
};
use dise_isa::Width;

/// Unique scratch path per test (tests share one process and may run
/// concurrently).
fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dise-store-{name}-{}-{}.dtrc",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn app(iters: u32) -> Application {
    Application::new(
        parse_asm(&format!(
            "        la      r1, x
                     lda     r4, {iters}(zero)
             loop:   stq     r4, 0(r1)
                     subq    r4, 1, r4
                     bgt     r4, loop
                     halt
             .data
             x:      .quad 0"
        ))
        .expect("kernel parses"),
        Layout::default(),
    )
}

fn watch(app: &Application) -> Vec<Watchpoint> {
    let x = app.program().expect("assembles").symbol("x").expect("x exists");
    vec![Watchpoint::new(WatchExpr::Scalar { addr: x, width: Width::Q })]
}

/// Record a known-good trace and prove it replays before any test
/// damages it.
fn good_trace(name: &str, a: &Application) -> PathBuf {
    let path = scratch(name);
    record_session(a, &path).expect("recording succeeds");
    let members = vec![(BackendKind::VirtualMemory, watch(a), vec![CpuConfig::default()])];
    let replayed = replay_from_trace(a, members, &path).expect("pristine trace replays");
    assert!(replayed[0].is_ok(), "pristine replay runs clean");
    path
}

fn replay_err(a: &Application, path: &Path) -> DebugError {
    let members = vec![(BackendKind::VirtualMemory, watch(a), vec![CpuConfig::default()])];
    replay_from_trace(a, members, path).expect_err("damaged trace must be rejected")
}

#[test]
fn truncated_trace_is_rejected_as_truncated() {
    let a = app(50);
    let path = good_trace("truncated", &a);
    let bytes = std::fs::read(&path).expect("trace readable");
    // Cut mid-stream: the end chunk (and with it the declared record
    // count) is gone, which is exactly what a crashed writer would
    // leave if staging did not already prevent publishing it.
    std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("rewrite");
    assert!(
        matches!(replay_err(&a, &path), DebugError::Trace(TraceError::Truncated { .. })),
        "a cut-off file is truncation, not generic corruption"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flipped_payload_byte_is_rejected_by_crc() {
    let a = app(50);
    let path = good_trace("crc", &a);
    let mut bytes = std::fs::read(&path).expect("trace readable");
    // Flip one byte inside the first data chunk's payload: header is
    // 20 bytes, chunk header 9, so offset 40 is well inside the
    // payload for any non-trivial kernel.
    bytes[40] ^= 0x01;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(
        matches!(replay_err(&a, &path), DebugError::Trace(TraceError::CorruptChunk { .. })),
        "a flipped bit must be caught by the chunk CRC"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_format_version_is_rejected_as_version() {
    let a = app(50);
    let path = good_trace("version", &a);
    let mut bytes = std::fs::read(&path).expect("trace readable");
    // The version field is the u32 after the 8-byte magic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(
        matches!(
            replay_err(&a, &path),
            DebugError::Trace(TraceError::BadVersion { found: 99, .. })
        ),
        "a future format version is rejected by name, not misread"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mangled_magic_is_rejected_as_not_a_trace() {
    let a = app(50);
    let path = good_trace("magic", &a);
    let mut bytes = std::fs::read(&path).expect("trace readable");
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(
        matches!(replay_err(&a, &path), DebugError::Trace(TraceError::BadMagic { .. })),
        "a file that is not a trace at all gets its own rejection"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_trace_for_an_edited_kernel_is_rejected_by_fingerprint() {
    // Record the 50-iteration kernel, then "edit" it to 60 iterations:
    // same symbols, same shape, different program — the trace is stale
    // and must be rejected before any member replays a wrong stream.
    let recorded = app(50);
    let edited = app(60);
    let path = good_trace("stale", &recorded);
    assert!(
        matches!(
            replay_err(&edited, &path),
            DebugError::Trace(TraceError::FingerprintMismatch { .. })
        ),
        "an edited kernel must never silently replay its old trace"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejection_happens_before_any_member_runs() {
    // The error is scenario-wide (outer Err), not smeared across
    // members: nobody gets half a replay.
    let a = app(50);
    let path = good_trace("outer", &a);
    let bytes = std::fs::read(&path).expect("trace readable");
    std::fs::write(&path, &bytes[..30]).expect("rewrite");
    let members = vec![
        (BackendKind::VirtualMemory, watch(&a), vec![CpuConfig::default()]),
        (BackendKind::hw4(), watch(&a), vec![CpuConfig::default()]),
    ];
    let err = replay_from_trace(&a, members, &path).expect_err("rejected for every member at once");
    assert!(matches!(err, DebugError::Trace(_)), "outer error carries the trace failure: {err}");
    let _ = std::fs::remove_file(&path);
}
