//! Cross-crate integration tests: whole debugging sessions over the
//! calibrated workloads, checking the invariants the paper's evaluation
//! rests on.
//!
//! The session grid is shared across tests and run once, on the
//! `dise-bench` job-grid worker pool (`DISE_JOBS` to override its
//! size): the DISE column is needed by three tests, so computing it in
//! each would triple the bill for the most expensive cells.

use std::collections::HashMap;
use std::sync::OnceLock;

use dise_bench::run_grid;
use dise_repro::cpu::{CpuConfig, RunStats};
use dise_repro::debug::{
    run_baseline, run_session, BackendKind, DebugError, DiseStrategy, Session, SessionReport,
};
use dise_repro::workloads::{all, WatchKind, Workload};

const ITERS: u32 = 120;

fn run(w: &Workload, kind: WatchKind, backend: BackendKind) -> Result<SessionReport, DebugError> {
    run_session(w.app(), vec![w.watchpoint(kind)], backend, CpuConfig::default())
}

/// The kinds every non-DISE backend can implement on these kernels.
const COMMON_KINDS: [WatchKind; 3] = [WatchKind::Warm1, WatchKind::Warm2, WatchKind::Cold];

/// One shared run of the unconditional-watchpoint grid: DISE over all
/// six kinds, virtual memory and hardware registers over the kinds they
/// support, plus per-kernel baselines.
struct SharedGrid {
    workloads: Vec<Workload>,
    baselines: Vec<RunStats>,
    reports: HashMap<(usize, WatchKind, &'static str), SessionReport>,
}

fn shared_grid() -> &'static SharedGrid {
    static GRID: OnceLock<SharedGrid> = OnceLock::new();
    GRID.get_or_init(|| {
        let workloads = all(ITERS);
        let mut cells: Vec<(usize, WatchKind, &'static str, BackendKind)> = Vec::new();
        for (i, _) in workloads.iter().enumerate() {
            for kind in WatchKind::ALL {
                cells.push((i, kind, "dise", BackendKind::dise_default()));
            }
            for kind in COMMON_KINDS {
                cells.push((i, kind, "vm", BackendKind::VirtualMemory));
                cells.push((i, kind, "hw", BackendKind::hw4()));
            }
        }
        let reports =
            run_grid(&cells, |&(i, kind, _, backend)| run(&workloads[i], kind, backend).unwrap());
        let baselines =
            run_grid(&workloads, |w| run_baseline(w.app(), CpuConfig::default()).unwrap());
        SharedGrid {
            baselines,
            reports: cells
                .iter()
                .map(|&(i, kind, label, _)| (i, kind, label))
                .zip(reports)
                .collect(),
            workloads,
        }
    })
}

impl SharedGrid {
    fn report(&self, i: usize, kind: WatchKind, label: &'static str) -> &SessionReport {
        &self.reports[&(i, kind, label)]
    }
}

/// Every backend must report the same *user-visible* debugging events
/// for the same watchpoint — the implementations differ only in
/// overhead. (Single-stepping is excluded: it observes values at
/// statement granularity, so back-to-back changes within one statement
/// coalesce.)
#[test]
fn backends_agree_on_user_transitions() {
    let g = shared_grid();
    for (i, w) in g.workloads.iter().enumerate() {
        for kind in COMMON_KINDS {
            let dise = g.report(i, kind, "dise");
            assert_eq!(dise.error, None);
            let vm = g.report(i, kind, "vm");
            let hw = g.report(i, kind, "hw");
            assert_eq!(
                dise.transitions.user,
                vm.transitions.user,
                "{}/{:?}: DISE vs VM",
                w.name(),
                kind
            );
            assert_eq!(
                dise.transitions.user,
                hw.transitions.user,
                "{}/{:?}: DISE vs HW",
                w.name(),
                kind
            );
        }
    }
}

/// The paper's headline: DISE eliminates *all* spurious transitions,
/// for every workload and every watchpoint kind.
#[test]
fn dise_has_zero_spurious_transitions_everywhere() {
    let g = shared_grid();
    for (i, w) in g.workloads.iter().enumerate() {
        for kind in WatchKind::ALL {
            let r = g.report(i, kind, "dise");
            assert_eq!(r.error, None, "{}/{kind:?}", w.name());
            assert_eq!(
                r.transitions.spurious_total(),
                0,
                "{}/{:?} must not pay for spurious transitions",
                w.name(),
                kind
            );
            assert_eq!(r.run.debugger_stalls, 0, "{}/{kind:?}", w.name());
        }
    }
}

/// "Typically limits debugging overhead to 25% or less for a wide range
/// of watchpoints": check the non-HOT scalar watchpoints stay modest
/// and every DISE run stays within a small constant factor.
#[test]
fn dise_overhead_stays_modest() {
    let g = shared_grid();
    for (i, w) in g.workloads.iter().enumerate() {
        let base = &g.baselines[i];
        for kind in WatchKind::ALL {
            let overhead = g.report(i, kind, "dise").overhead_vs(base);
            assert!(overhead < 8.0, "{}/{:?}: DISE overhead {overhead:.2}", w.name(), kind);
            if matches!(kind, WatchKind::Warm2 | WatchKind::Cold) {
                assert!(
                    overhead < 1.6,
                    "{}/{:?}: cool watchpoints should be near-free, got {overhead:.2}",
                    w.name(),
                    kind
                );
            }
        }
    }
}

/// Spurious transitions translate into cycles: each one costs the
/// configured 100,000-cycle round trip.
#[test]
fn spurious_transitions_are_charged() {
    let w = Workload::vortex(ITERS);
    let base = run_baseline(w.app(), CpuConfig::default()).unwrap();
    let r = run(&w, WatchKind::Hot, BackendKind::hw4()).unwrap();
    // vortex HOT is silent-store heavy: many spurious value transitions.
    assert!(r.transitions.spurious_value > 50, "{:?}", r.transitions);
    let expected_floor = base.cycles + 100_000 * r.transitions.spurious_value;
    assert!(
        r.run.cycles >= expected_floor,
        "cycles {} must include {} stalls",
        r.run.cycles,
        r.transitions.spurious_value
    );
}

/// The DISE engine's capacity limits are respected end-to-end: a
/// 16-watchpoint serial production still fits the paper's 512-entry
/// replacement table.
#[test]
fn sweep_fits_paper_engine_capacity() {
    let w = Workload::gcc(ITERS);
    let counts = [1usize, 4, 16];
    let reports = run_grid(&counts, |&n| {
        run_session(
            w.app(),
            w.sweep_watchpoints(n),
            BackendKind::dise_default(),
            CpuConfig::default(),
        )
        .unwrap()
    });
    for (n, r) in counts.iter().zip(reports) {
        assert_eq!(r.error, None, "n={n}");
    }
}

/// Conditional watchpoints: the predicate never holds, so *no* backend
/// reports a user transition; DISE reports no transitions at all.
#[test]
fn conditional_predicates_never_reach_user() {
    let workloads = all(ITERS);
    let backends = [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::dise_default()];
    let mut cells = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        for backend in backends {
            cells.push((i, w.conditional_watchpoint(WatchKind::Warm1), backend));
        }
    }
    let reports = run_grid(&cells, |(i, wp, backend)| {
        run_session(workloads[*i].app(), vec![*wp], *backend, CpuConfig::default()).unwrap()
    });
    for ((i, _, backend), r) in cells.iter().zip(&reports) {
        assert_eq!(r.transitions.user, 0, "{}/{backend:?}", workloads[*i].name());
        // The DISE cell doubles as the stronger zero-transitions check —
        // no need to re-run it.
        if *backend == BackendKind::dise_default() {
            assert_eq!(r.transitions.total(), 0, "{}", workloads[*i].name());
        }
    }
}

/// Debugged runs must not corrupt the application: the final value of
/// every watched variable (and of the kernel's busiest array cell)
/// matches the undebugged run, under every backend — no "heisenbugs".
#[test]
fn debugging_preserves_application_semantics() {
    let workloads = all(ITERS);
    let probes = ["hot", "warm1", "warm2", "cold"];
    let expected = run_grid(&workloads, |w| {
        let prog = w.app().program().unwrap();
        let mut m = dise_repro::cpu::Machine::from_program(&prog);
        m.run();
        probes.map(|s| m.exec.mem().read_u(prog.symbol(s).unwrap(), 8))
    });

    let backends = [
        BackendKind::dise_default(),
        BackendKind::Dise(DiseStrategy::bloom(false)),
        BackendKind::Dise(DiseStrategy { protect_debugger: true, ..Default::default() }),
        BackendKind::VirtualMemory,
        BackendKind::hw4(),
    ];
    let mut cells = Vec::new();
    for (i, _) in workloads.iter().enumerate() {
        for backend in backends {
            cells.push((i, backend));
        }
    }
    let finals = run_grid(&cells, |&(i, backend)| {
        let w = &workloads[i];
        let prog = w.app().program().unwrap();
        let session = Session::new(w.app(), vec![w.watchpoint(WatchKind::Hot)], backend).unwrap();
        let (report, exec) = session.run_with_state();
        (report.error, probes.map(|s| exec.mem().read_u(prog.symbol(s).unwrap(), 8)))
    });
    for (&(i, backend), (error, values)) in cells.iter().zip(&finals) {
        let w = &workloads[i];
        assert_eq!(*error, None, "{}/{backend:?}", w.name());
        for (probe, (got, want)) in probes.iter().zip(values.iter().zip(&expected[i])) {
            assert_eq!(got, want, "{}/{backend:?}: debugged run perturbed `{probe}`", w.name());
        }
    }
}
