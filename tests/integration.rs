//! Cross-crate integration tests: whole debugging sessions over the
//! calibrated workloads, checking the invariants the paper's evaluation
//! rests on.

use dise_repro::cpu::CpuConfig;
use dise_repro::debug::{
    run_baseline, BackendKind, DebugError, DiseStrategy, Session, SessionReport,
};
use dise_repro::workloads::{all, WatchKind, Workload};

const ITERS: u32 = 120;

fn run(w: &Workload, kind: WatchKind, backend: BackendKind) -> Result<SessionReport, DebugError> {
    Ok(Session::new(w.app(), vec![w.watchpoint(kind)], backend)?.run())
}

/// Every backend must report the same *user-visible* debugging events
/// for the same watchpoint — the implementations differ only in
/// overhead. (Single-stepping is excluded: it observes values at
/// statement granularity, so back-to-back changes within one statement
/// coalesce.)
#[test]
fn backends_agree_on_user_transitions() {
    for w in all(ITERS) {
        for kind in [WatchKind::Warm1, WatchKind::Warm2, WatchKind::Cold] {
            let dise = run(&w, kind, BackendKind::dise_default()).unwrap();
            assert_eq!(dise.error, None);
            let vm = run(&w, kind, BackendKind::VirtualMemory).unwrap();
            let hw = run(&w, kind, BackendKind::hw4()).unwrap();
            assert_eq!(
                dise.transitions.user,
                vm.transitions.user,
                "{}/{:?}: DISE vs VM",
                w.name(),
                kind
            );
            assert_eq!(
                dise.transitions.user,
                hw.transitions.user,
                "{}/{:?}: DISE vs HW",
                w.name(),
                kind
            );
        }
    }
}

/// The paper's headline: DISE eliminates *all* spurious transitions,
/// for every workload and every watchpoint kind.
#[test]
fn dise_has_zero_spurious_transitions_everywhere() {
    for w in all(ITERS) {
        for kind in WatchKind::ALL {
            let r = run(&w, kind, BackendKind::dise_default()).unwrap();
            assert_eq!(r.error, None, "{}/{kind:?}", w.name());
            assert_eq!(
                r.transitions.spurious_total(),
                0,
                "{}/{:?} must not pay for spurious transitions",
                w.name(),
                kind
            );
            assert_eq!(r.run.debugger_stalls, 0, "{}/{kind:?}", w.name());
        }
    }
}

/// "Typically limits debugging overhead to 25% or less for a wide range
/// of watchpoints": check the non-HOT scalar watchpoints stay modest
/// and every DISE run stays within a small constant factor.
#[test]
fn dise_overhead_stays_modest() {
    for w in all(ITERS) {
        let base = run_baseline(w.app(), CpuConfig::default()).unwrap();
        for kind in WatchKind::ALL {
            let r = run(&w, kind, BackendKind::dise_default()).unwrap();
            let overhead = r.overhead_vs(&base);
            assert!(overhead < 8.0, "{}/{:?}: DISE overhead {overhead:.2}", w.name(), kind);
            if matches!(kind, WatchKind::Warm2 | WatchKind::Cold) {
                assert!(
                    overhead < 1.6,
                    "{}/{:?}: cool watchpoints should be near-free, got {overhead:.2}",
                    w.name(),
                    kind
                );
            }
        }
    }
}

/// Spurious transitions translate into cycles: each one costs the
/// configured 100,000-cycle round trip.
#[test]
fn spurious_transitions_are_charged() {
    let w = Workload::vortex(ITERS);
    let base = run_baseline(w.app(), CpuConfig::default()).unwrap();
    let r = run(&w, WatchKind::Hot, BackendKind::hw4()).unwrap();
    // vortex HOT is silent-store heavy: many spurious value transitions.
    assert!(r.transitions.spurious_value > 50, "{:?}", r.transitions);
    let expected_floor = base.cycles + 100_000 * r.transitions.spurious_value;
    assert!(
        r.run.cycles >= expected_floor,
        "cycles {} must include {} stalls",
        r.run.cycles,
        r.transitions.spurious_value
    );
}

/// The DISE engine's capacity limits are respected end-to-end: a
/// 16-watchpoint serial production still fits the paper's 512-entry
/// replacement table.
#[test]
fn sweep_fits_paper_engine_capacity() {
    let w = Workload::gcc(ITERS);
    for n in [1, 4, 16] {
        let r = Session::new(w.app(), w.sweep_watchpoints(n), BackendKind::dise_default())
            .unwrap()
            .run();
        assert_eq!(r.error, None, "n={n}");
    }
}

/// Conditional watchpoints: the predicate never holds, so *no* backend
/// reports a user transition; DISE reports no transitions at all.
#[test]
fn conditional_predicates_never_reach_user() {
    for w in all(ITERS) {
        let wp = w.conditional_watchpoint(WatchKind::Warm1);
        for backend in [BackendKind::VirtualMemory, BackendKind::hw4(), BackendKind::dise_default()]
        {
            let r = Session::new(w.app(), vec![wp], backend).unwrap().run();
            assert_eq!(r.transitions.user, 0, "{}/{backend:?}", w.name());
        }
        let dise = Session::new(w.app(), vec![wp], BackendKind::dise_default()).unwrap().run();
        assert_eq!(dise.transitions.total(), 0, "{}", w.name());
    }
}

/// Debugged runs must not corrupt the application: the final value of
/// every watched variable (and of the kernel's busiest array cell)
/// matches the undebugged run, under every backend — no "heisenbugs".
#[test]
fn debugging_preserves_application_semantics() {
    for w in all(ITERS) {
        let prog = w.app().program().unwrap();
        let mut m = dise_repro::cpu::Machine::from_program(&prog);
        m.run();
        let probes: Vec<u64> =
            ["hot", "warm1", "warm2", "cold"].iter().map(|s| prog.symbol(s).unwrap()).collect();
        let expected: Vec<u64> = probes.iter().map(|&a| m.exec.mem().read_u(a, 8)).collect();

        for backend in [
            BackendKind::dise_default(),
            BackendKind::Dise(DiseStrategy::bloom(false)),
            BackendKind::Dise(DiseStrategy { protect_debugger: true, ..Default::default() }),
            BackendKind::VirtualMemory,
            BackendKind::hw4(),
        ] {
            let session =
                Session::new(w.app(), vec![w.watchpoint(WatchKind::Hot)], backend).unwrap();
            let (report, exec) = session.run_with_state();
            assert_eq!(report.error, None, "{}/{backend:?}", w.name());
            for (&addr, &want) in probes.iter().zip(&expected) {
                assert_eq!(
                    exec.mem().read_u(addr, 8),
                    want,
                    "{}/{backend:?}: debugged run perturbed {addr:#x}",
                    w.name()
                );
            }
        }
    }
}
