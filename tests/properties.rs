//! Property-based tests (proptest) over the core data structures and
//! the simulator's key invariants.

use proptest::prelude::*;

use dise_repro::asm::{Asm, Layout};
use dise_repro::cpu::{CpuConfig, Executor};
use dise_repro::engine::{Pattern, Production, TemplateInst};
use dise_repro::isa::{decode, encode, AluOp, Cond, Instr, OpClass, Operand, Reg, Width};
use dise_repro::mem::{Cache, CacheConfig, Memory};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..48).prop_map(|i| Reg::from_index(i).unwrap())
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B), Just(Width::W), Just(Width::L), Just(Width::Q)]
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u8..6).prop_map(|c| Cond::from_code(c).unwrap())
}

fn any_aluop() -> impl Strategy<Value = AluOp> {
    (0u8..18).prop_map(|f| AluOp::from_func(f).unwrap())
}

fn any_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![any_reg().prop_map(Operand::Reg), any::<u8>().prop_map(Operand::Imm)]
}

/// Any encodable instruction.
fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_width(), any_reg(), any_reg(), -8192i16..8192)
            .prop_map(|(width, rd, base, disp)| Instr::Load { width, rd, base, disp }),
        (any_width(), any_reg(), any_reg(), -8192i16..8192)
            .prop_map(|(width, rs, base, disp)| Instr::Store { width, rs, base, disp }),
        (any_reg(), any_reg(), -8192i16..8192).prop_map(|(rd, base, disp)| Instr::Lda {
            rd,
            base,
            disp
        }),
        (any_reg(), any_reg(), -8192i16..8192).prop_map(|(rd, base, disp)| Instr::Ldah {
            rd,
            base,
            disp
        }),
        (any_aluop(), any_reg(), any_reg(), any_operand())
            .prop_map(|(op, rd, ra, rb)| Instr::Alu { op, rd, ra, rb }),
        (any_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, disp)| Instr::Br { rd, disp }),
        (any_cond(), any_reg(), -(1i32 << 19)..(1 << 19))
            .prop_map(|(cond, rs, disp)| Instr::CondBr { cond, rs, disp }),
        (any_reg(), any_reg()).prop_map(|(rd, base)| Instr::Jmp { rd, base }),
        Just(Instr::Trap),
        (any_cond(), any_reg()).prop_map(|(cond, rs)| Instr::CTrap { cond, rs }),
        any::<u16>().prop_map(Instr::Codeword),
        Just(Instr::Halt),
        Just(Instr::Nop),
        (any_cond(), any_reg(), any::<i8>()).prop_map(|(cond, rs, disp)| Instr::DBr {
            cond,
            rs,
            disp
        }),
        any_reg().prop_map(|target| Instr::DCall { target }),
        (any_cond(), any_reg(), any_reg()).prop_map(|(cond, rs, target)| Instr::DCCall {
            cond,
            rs,
            target
        }),
        Just(Instr::DRet),
        (any_reg(), any_reg()).prop_map(|(rd, dr)| Instr::DMfr { rd, dr }),
        (any_reg(), any_reg()).prop_map(|(dr, rs)| Instr::DMtr { dr, rs }),
    ]
}

proptest! {
    /// Binary encode/decode is a bijection on well-formed instructions.
    #[test]
    fn encode_decode_round_trip(i in any_instr()) {
        prop_assert_eq!(decode(encode(&i)), Ok(i));
    }

    /// The textual form produced by Display re-parses to the same
    /// instruction (assembler/disassembler agreement), for label-free
    /// instructions.
    #[test]
    fn display_parse_round_trip(i in any_instr()) {
        // Branch displacements print as relative offsets which the
        // parser accepts numerically, so the round trip is exact.
        let text = i.to_string();
        let asm = dise_repro::asm::parse_asm(&text)
            .unwrap_or_else(|e| panic!("parsing `{text}`: {e}"));
        let prog = asm.assemble(Layout::default()).unwrap();
        prop_assert_eq!(prog.decode_at(prog.text_base), Some(i), "{}", text);
    }

    /// Memory reads return exactly what was written, across any widths
    /// and addresses (little-endian, page-crossing included).
    #[test]
    fn memory_read_after_write(
        addr in 0u64..0x1_0000_0000,
        wcode in 0u8..4,
        value: u64,
    ) {
        let width = Width::from_code(wcode).unwrap().bytes();
        let mut m = Memory::new();
        m.write_u(addr, width, value);
        let mask = if width == 8 { u64::MAX } else { (1 << (8 * width)) - 1 };
        prop_assert_eq!(m.read_u(addr, width), value & mask);
    }

    /// A cache never reports a hit for a line it has not seen, and
    /// always hits a line just accessed (temporal locality invariant).
    #[test]
    fn cache_hit_iff_recently_accessed(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(CacheConfig { size: 1024, assoc: 2, line: 64 });
        let mut seen = std::collections::HashSet::new();
        for a in addrs {
            let line = a / 64;
            let hit = c.access(a);
            if hit {
                prop_assert!(seen.contains(&line), "hit on unseen line {line}");
            }
            prop_assert!(c.contains(a), "just-accessed line must be resident");
            seen.insert(line);
        }
    }

    /// ALU semantics: compare outputs are boolean; bic/and/or identities.
    #[test]
    fn alu_identities(a: u64, b: u64) {
        for op in [AluOp::CmpEq, AluOp::CmpLt, AluOp::CmpLe, AluOp::CmpUlt, AluOp::CmpUle] {
            prop_assert!(op.apply(a, b) <= 1);
        }
        prop_assert_eq!(AluOp::Bic.apply(a, b), a & !b);
        prop_assert_eq!(AluOp::And.apply(a, b) | AluOp::Bic.apply(a, b), a);
        prop_assert_eq!(AluOp::Or.apply(a, 0), a);
        prop_assert_eq!(AluOp::Xor.apply(a, a), 0);
    }
}

/// A two-pass self-modifying kernel: pass 1 executes `slot` (priming
/// the decoded-instruction cache) and stores its result, then patches
/// `slot` in place with the word at `patch`; pass 2 re-executes the
/// rewritten slot and stores again.
fn self_modifying_program(patch: &Instr) -> dise_repro::asm::Program {
    let mut a = Asm::new();
    a.label("start");
    a.load_addr(Reg::gpr(1), "slot", 0);
    a.load_addr(Reg::gpr(3), "patch", 0);
    a.load_addr(Reg::gpr(20), "out", 0);
    a.inst(Instr::Load { width: Width::L, rd: Reg::gpr(2), base: Reg::gpr(3), disp: 0 });
    a.inst(Instr::li(Reg::gpr(9), 2));
    a.label("slot");
    a.inst(Instr::Lda { rd: Reg::gpr(5), base: Reg::ZERO, disp: 111 });
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(5), base: Reg::gpr(20), disp: 0 });
    a.inst(Instr::Alu { op: AluOp::Add, rd: Reg::gpr(20), ra: Reg::gpr(20), rb: Operand::Imm(8) });
    // Self-modify: overwrite `slot`'s word with the patch instruction.
    a.inst(Instr::Store { width: Width::L, rs: Reg::gpr(2), base: Reg::gpr(1), disp: 0 });
    a.inst(Instr::Alu { op: AluOp::Sub, rd: Reg::gpr(9), ra: Reg::gpr(9), rb: Operand::Imm(1) });
    a.cond_br(Cond::Gt, Reg::gpr(9), "slot");
    a.inst(Instr::Halt);
    a.data_label("patch").long(encode(patch));
    a.data_label("out").space(16);
    a.assemble(Layout::default()).unwrap()
}

/// Build a random straight-line program from (op, rd, ra, imm) tuples,
/// ending in stores of every register and a halt.
fn straight_line_program(ops: &[(u8, u8, u8, u8)]) -> dise_repro::asm::Program {
    let mut a = Asm::new();
    a.label("start");
    // Seed registers with distinct values.
    for i in 0..8u8 {
        a.inst(Instr::li(Reg::gpr(i + 1), 100 + i as i16));
    }
    a.load_addr(Reg::gpr(20), "out", 0);
    for &(f, rd, ra, imm) in ops {
        let op = AluOp::from_func(f % 18).unwrap();
        a.inst(Instr::Alu {
            op,
            rd: Reg::gpr(1 + rd % 8),
            ra: Reg::gpr(1 + ra % 8),
            rb: Operand::Imm(imm),
        });
    }
    for i in 0..8u8 {
        a.inst(Instr::Store {
            width: Width::Q,
            rs: Reg::gpr(i + 1),
            base: Reg::gpr(20),
            disp: i as i16 * 8,
        });
    }
    a.inst(Instr::Halt);
    a.data_label("out").space(64);
    a.assemble(Layout::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DISE expansion transparency: adding an observation-only
    /// production (trigger + DISE-register side effects) to every store
    /// leaves the application's architectural results unchanged.
    #[test]
    fn expansion_preserves_application_state(
        ops in prop::collection::vec(any::<(u8, u8, u8, u8)>(), 1..60),
    ) {
        let prog = straight_line_program(&ops);

        let run = |with_production: bool| {
            let mut e = Executor::from_program(&prog, CpuConfig::default());
            if with_production {
                e.engine_mut()
                    .install(Production::new(
                        "observer",
                        Pattern::opclass(OpClass::Store),
                        vec![
                            TemplateInst::Trigger,
                            TemplateInst::Alu {
                                op: AluOp::Add,
                                rd: dise_repro::engine::TReg::Lit(Reg::dise(1)),
                                ra: dise_repro::engine::TReg::Lit(Reg::dise(1)),
                                rb: dise_repro::engine::TOperand::Imm(1),
                            },
                        ],
                    ))
                    .unwrap();
            }
            let mut guard = 0;
            while !e.is_halted() {
                e.step();
                guard += 1;
                assert!(guard < 100_000);
            }
            let out = prog.symbol("out").unwrap();
            (0..8).map(|i| e.mem().read_u(out + i * 8, 8)).collect::<Vec<_>>()
        };

        prop_assert_eq!(run(false), run(true));
    }

    /// The executor's decoded-instruction cache must never serve a
    /// stale decode for a rewritten code word: a program that executes
    /// an instruction slot (priming the cache), overwrites the slot
    /// with an arbitrary patch instruction, and loops back must observe
    /// the patch on the second pass.
    #[test]
    fn self_modifying_code_never_serves_stale_decodes(
        op in any_aluop(),
        imm: u8,
        disp in 0i16..8192,
        use_lda: bool,
    ) {
        let r5 = Reg::gpr(5);
        let patch = if use_lda {
            Instr::Lda { rd: r5, base: Reg::ZERO, disp }
        } else {
            Instr::Alu { op, rd: r5, ra: Reg::ZERO, rb: Operand::Imm(imm) }
        };
        let expected = if use_lda { disp as i64 as u64 } else { op.apply(0, imm as u64) };
        let prog = self_modifying_program(&patch);

        let mut e = Executor::from_program(&prog, CpuConfig::default());
        let mut guard = 0;
        while !e.is_halted() {
            e.step();
            guard += 1;
            assert!(guard < 1_000);
        }
        let out = prog.symbol("out").unwrap();
        prop_assert_eq!(e.mem().read_u(out, 8), 111, "first pass runs the original slot");
        prop_assert_eq!(
            e.mem().read_u(out + 8, 8),
            expected,
            "second pass served a stale decode for {:?}",
            patch
        );
    }

    /// The block-level decoded-trace cache is transparent: a random
    /// self-modifying kernel under a random set of observation-only
    /// DISE productions yields the identical `Exec` stream with the
    /// cache off and on, and the cache's counters stay coherent at
    /// every step — monotone, with `hits + misses == lookups`.
    #[test]
    fn block_cache_is_transparent_over_self_modifying_code(
        op in any_aluop(),
        imm: u8,
        disp in 0i16..8192,
        use_lda: bool,
        class_picks in prop::collection::vec(0u8..3, 0..4),
    ) {
        let r5 = Reg::gpr(5);
        let patch = if use_lda {
            Instr::Lda { rd: r5, base: Reg::ZERO, disp }
        } else {
            Instr::Alu { op, rd: r5, ra: Reg::ZERO, rb: Operand::Imm(imm) }
        };
        let prog = self_modifying_program(&patch);
        let classes: std::collections::BTreeSet<u8> = class_picks.iter().copied().collect();

        let run = |cache: bool| {
            let mut e = Executor::from_program(&prog, CpuConfig::default());
            for &c in &classes {
                let class = match c {
                    0 => OpClass::Store,
                    1 => OpClass::Load,
                    _ => OpClass::Alu,
                };
                e.engine_mut()
                    .install(Production::new(
                        &format!("obs{c}"),
                        Pattern::opclass(class),
                        vec![
                            TemplateInst::Trigger,
                            TemplateInst::Alu {
                                op: AluOp::Add,
                                rd: dise_repro::engine::TReg::Lit(Reg::dise(1)),
                                ra: dise_repro::engine::TReg::Lit(Reg::dise(1)),
                                rb: dise_repro::engine::TOperand::Imm(1),
                            },
                        ],
                    ))
                    .unwrap();
            }
            e.set_block_cache(cache);
            let mut stream = Vec::new();
            let mut prev = dise_repro::cpu::BlockCacheStats::default();
            let mut guard = 0;
            while !e.is_halted() {
                stream.push(e.step());
                let s = e.block_cache_stats();
                prop_assert!(
                    s.lookups >= prev.lookups
                        && s.hits >= prev.hits
                        && s.misses >= prev.misses
                        && s.invalidations >= prev.invalidations,
                    "block-cache counters went backwards"
                );
                prop_assert_eq!(s.hits + s.misses, s.lookups, "every lookup is a hit or a miss");
                prev = s;
                guard += 1;
                assert!(guard < 10_000);
            }
            Ok((stream, prev))
        };

        let (off_stream, off_stats) = run(false)?;
        let (on_stream, on_stats) = run(true)?;
        prop_assert_eq!(
            off_stats,
            dise_repro::cpu::BlockCacheStats::default(),
            "cache off must not move block counters"
        );
        prop_assert!(on_stats.lookups > 0, "cache on must actually be consulted");
        prop_assert_eq!(off_stream, on_stream, "Exec streams must be byte-identical");
    }

    /// Copy-on-write fork invisibility, at every fork point: forking an
    /// executor mid-run over a self-modifying kernel — whose patch
    /// stores land on text pages still shared with the parent — must be
    /// undetectable from inside either machine. The child's
    /// continuation produces the same `Exec` stream, final data memory
    /// and DISE engine statistics as a never-forked reference run, and
    /// the parent, continued *after* the child has run (and unshared
    /// pages under it), stays bit-identical too.
    #[test]
    fn cow_fork_is_invisible_at_any_fork_point(
        op in any_aluop(),
        imm: u8,
        disp in 0i16..8192,
        use_lda: bool,
        fork_at in 0u64..24,
        with_production: bool,
    ) {
        let r5 = Reg::gpr(5);
        let patch = if use_lda {
            Instr::Lda { rd: r5, base: Reg::ZERO, disp }
        } else {
            Instr::Alu { op, rd: r5, ra: Reg::ZERO, rb: Operand::Imm(imm) }
        };
        let prog = self_modifying_program(&patch);
        let fresh = || {
            let mut e = Executor::from_program(&prog, CpuConfig::default());
            if with_production {
                e.engine_mut()
                    .install(Production::new(
                        "observer",
                        Pattern::opclass(OpClass::Store),
                        vec![
                            TemplateInst::Trigger,
                            TemplateInst::Alu {
                                op: AluOp::Add,
                                rd: dise_repro::engine::TReg::Lit(Reg::dise(1)),
                                ra: dise_repro::engine::TReg::Lit(Reg::dise(1)),
                                rb: dise_repro::engine::TOperand::Imm(1),
                            },
                        ],
                    ))
                    .unwrap();
            }
            e
        };
        let finish = |e: &mut Executor, stream: &mut Vec<dise_repro::cpu::Exec>| {
            let mut guard = 0;
            while !e.is_halted() {
                stream.push(e.step());
                guard += 1;
                assert!(guard < 10_000);
            }
        };
        let out = prog.symbol("out").unwrap();
        let data = |e: &Executor| (0..2).map(|i| e.mem().read_u(out + i * 8, 8)).collect::<Vec<_>>();

        let mut reference = fresh();
        let mut ref_stream = Vec::new();
        finish(&mut reference, &mut ref_stream);

        let mut parent = fresh();
        let mut pre = Vec::new();
        for _ in 0..fork_at {
            if parent.is_halted() {
                break;
            }
            pre.push(parent.step());
        }
        let mut child = parent.fork();
        prop_assert_eq!(
            child.mem().cow_stats().pages_shared as usize,
            child.mem().shared_pages(),
            "every resident page starts out shared with the parent"
        );

        // The child's continuation — its self-modifying stores unshare
        // pages under the parent — completes the reference stream.
        let mut child_stream = pre.clone();
        finish(&mut child, &mut child_stream);
        prop_assert_eq!(&child_stream, &ref_stream, "forked continuation diverged");
        prop_assert_eq!(data(&child), data(&reference), "forked final memory diverged");
        prop_assert_eq!(child.engine().stats(), reference.engine().stats());
        prop_assert_eq!(child.instructions(), reference.instructions());

        // The parent, resumed only now, must be unperturbed by
        // everything the child did.
        let mut parent_stream = pre;
        finish(&mut parent, &mut parent_stream);
        prop_assert_eq!(&parent_stream, &ref_stream, "parent diverged after child ran");
        prop_assert_eq!(data(&parent), data(&reference));
        prop_assert_eq!(parent.engine().stats(), reference.engine().stats());
    }

    /// Functional and timed execution see the same dynamic instruction
    /// stream: instruction counts agree and the timing model's cycle
    /// count is bounded below by instructions/width.
    #[test]
    fn timing_is_consistent_with_functional(
        ops in prop::collection::vec(any::<(u8, u8, u8, u8)>(), 1..40),
    ) {
        let prog = straight_line_program(&ops);
        let mut m = dise_repro::cpu::Machine::from_program(&prog);
        let stats = m.run();
        prop_assert_eq!(stats.instructions, m.exec.instructions());
        let min_cycles = stats.instructions / 4;
        prop_assert!(stats.cycles >= min_cycles);
        prop_assert!(stats.cycles < stats.instructions * 200 + 2_000);
    }
}

/// One step of the watched-pointer kernel behind
/// `chunked_fanout_is_byte_identical_for_every_chunk_size`.
#[derive(Clone, Debug, PartialEq)]
enum WatchAction {
    /// Store `v` into watched-slot `j`.
    StoreSlot { j: u8, v: u8 },
    /// Repoint the watched pointer cell at slot `j` — the filter's
    /// hardest case when it lands mid-chunk.
    Retarget { j: u8 },
    /// Store `v` into the unwatched noise region at offset `8k`.
    Noise { k: u8, v: u8 },
}

fn any_watch_action() -> impl Strategy<Value = WatchAction> {
    prop_oneof![
        (0u8..4, any::<u8>()).prop_map(|(j, v)| WatchAction::StoreSlot { j, v }),
        (0u8..4).prop_map(|j| WatchAction::Retarget { j }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| WatchAction::Noise { k, v }),
    ]
}

/// A kernel driven by `actions`: a pointer cell `ptr` aimed at one of
/// four watched slots, retargeted and stored through arbitrarily, with
/// unwatched noise stores interleaved.
fn watched_pointer_asm(actions: &[WatchAction]) -> Asm {
    let (ptr, slots, noise) = (Reg::gpr(16), Reg::gpr(17), Reg::gpr(18));
    let mut a = Asm::new();
    a.label("start");
    a.load_addr(ptr, "ptr", 0);
    a.load_addr(slots, "slots", 0);
    a.load_addr(noise, "noise", 0);
    // Aim the pointer at slot 0 before the action stream begins.
    a.inst(Instr::Lda { rd: Reg::gpr(2), base: slots, disp: 0 });
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(2), base: ptr, disp: 0 });
    for action in actions {
        match *action {
            WatchAction::StoreSlot { j, v } => {
                a.inst(Instr::li(Reg::gpr(3), v as i16));
                a.inst(Instr::Store {
                    width: Width::Q,
                    rs: Reg::gpr(3),
                    base: slots,
                    disp: 8 * (j % 4) as i16,
                });
            }
            WatchAction::Retarget { j } => {
                a.inst(Instr::Lda { rd: Reg::gpr(2), base: slots, disp: 8 * (j % 4) as i16 });
                a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(2), base: ptr, disp: 0 });
            }
            WatchAction::Noise { k, v } => {
                a.inst(Instr::li(Reg::gpr(3), v as i16));
                a.inst(Instr::Store {
                    width: Width::Q,
                    rs: Reg::gpr(3),
                    base: noise,
                    disp: 8 * k as i16,
                });
            }
        }
    }
    a.inst(Instr::Halt);
    a.data_label("ptr").quad(0);
    a.data_label("slots").space(32);
    a.data_label("noise").space(2048);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chunked fan-out byte-identity, on the filter's hardest case:
    /// random kernels whose indirect watchpoint's pointer cell is
    /// retargeted mid-chunk. For every chunk size — including across
    /// arbitrary poll-budget slicings and the trace record/replay path —
    /// the three-member observer batch must report byte-identically to
    /// `DISE_CHUNK=1` (the per-record fan-out), and the chunk-skip
    /// counters must conserve: every (member, chunk) pair is skipped or
    /// scanned, never both, never neither.
    #[test]
    fn chunked_fanout_is_byte_identical_for_every_chunk_size(
        actions in prop::collection::vec(any_watch_action(), 1..40),
        cap in 2u64..96,
        budget in 1u64..64,
    ) {
        use dise_repro::debug::{
            fanout_chunks, fanout_chunks_scanned, fanout_chunks_skipped, Application, BackendKind,
            SessionTask, Step, WatchExpr, Watchpoint,
        };

        let app = Application::new(watched_pointer_asm(&actions), Layout::default());
        let prog = app.program().unwrap();
        let (ptr, slots) = (prog.symbol("ptr").unwrap(), prog.symbol("slots").unwrap());
        let cpus = vec![CpuConfig::default(), CpuConfig { commit_width: 2, ..CpuConfig::default() }];
        let members = vec![
            (
                BackendKind::DiseComparators,
                vec![Watchpoint::new(WatchExpr::Indirect { ptr, width: Width::Q })],
                cpus.clone(),
            ),
            (
                BackendKind::VirtualMemory,
                vec![Watchpoint::new(WatchExpr::Scalar { addr: slots + 8, width: Width::Q })],
                cpus.clone(),
            ),
            (
                BackendKind::hw4(),
                vec![Watchpoint::new(WatchExpr::Scalar { addr: slots + 16, width: Width::Q })],
                cpus,
            ),
        ];
        let run = |chunk: u64, budget: u64| {
            std::env::set_var("DISE_CHUNK", chunk.to_string());
            let mut task = SessionTask::observer(&app, members.clone());
            let out = loop {
                match task.poll(budget) {
                    Step::Done(out) => break out,
                    Step::Yielded(_) => {}
                    Step::Blocked(r) => panic!("ungated task blocked: {r}"),
                }
            };
            out.into_observe().unwrap()
        };

        let (c0, s0, k0) = (fanout_chunks(), fanout_chunks_scanned(), fanout_chunks_skipped());
        let reference = run(1, u64::MAX);
        let (dc, ds, dk) = (
            fanout_chunks() - c0,
            fanout_chunks_scanned() - s0,
            fanout_chunks_skipped() - k0,
        );
        prop_assert_eq!(ds + dk, 3 * dc, "every (member, chunk) pair is scanned xor skipped");

        prop_assert_eq!(&run(cap, u64::MAX), &reference, "chunk size {} diverged", cap);
        prop_assert_eq!(&run(cap, budget), &reference, "budget-sliced chunk {} diverged", cap);

        // Copy-on-write timing groups must be invisible: disabling the
        // sharing changes nothing but speed.
        std::env::set_var("DISE_TIMING_SHARE", "0");
        prop_assert_eq!(&run(cap, u64::MAX), &reference, "private timing diverged");
        std::env::remove_var("DISE_TIMING_SHARE");

        // The trace path: record at the large chunk size, replay at
        // both extremes — all byte-identical to the per-record run.
        let dir = std::env::temp_dir().join(format!("dise-fanout-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let trace = dir.join(format!(
            "{}.dtrc",
            UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::env::set_var("DISE_CHUNK", cap.to_string());
        let recorded = SessionTask::observer_recorded(&app, members.clone(), &trace)
            .run_to_completion()
            .into_observe()
            .unwrap();
        prop_assert_eq!(&recorded, &reference, "recording pass diverged");
        for replay_chunk in [1, cap] {
            std::env::set_var("DISE_CHUNK", replay_chunk.to_string());
            let replayed = SessionTask::observer_replay(&app, members.clone(), &trace)
                .run_to_completion()
                .into_observe()
                .unwrap();
            prop_assert_eq!(&replayed, &reference, "replay at chunk {} diverged", replay_chunk);
        }
        std::env::remove_var("DISE_CHUNK");
        let _ = std::fs::remove_file(&trace);
    }
}
