//! Reviewer repro: clean-prefix flush after a dirty retargeting record.

use dise_repro::asm::{Asm, Layout};
use dise_repro::cpu::CpuConfig;
use dise_repro::debug::{Application, BackendKind, SessionTask, Step, WatchExpr, Watchpoint};
use dise_repro::isa::{Instr, Reg, Width};

fn kernel() -> Asm {
    let (ptr, slots, noise) = (Reg::gpr(16), Reg::gpr(17), Reg::gpr(18));
    let mut a = Asm::new();
    a.label("start");
    a.load_addr(ptr, "ptr", 0);
    a.load_addr(slots, "slots", 0);
    a.load_addr(noise, "noise", 0);
    // Aim the pointer at slot 0.
    a.inst(Instr::Lda { rd: Reg::gpr(2), base: slots, disp: 0 });
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(2), base: ptr, disp: 0 });
    // Retarget -> slot 3.
    a.inst(Instr::Lda { rd: Reg::gpr(2), base: slots, disp: 24 });
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(2), base: ptr, disp: 0 });
    // Clean store to slot 0 (unwatched right now).
    a.inst(Instr::li(Reg::gpr(3), 5));
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(3), base: slots, disp: 0 });
    // Clean noise store above slot 3 to stretch the chunk bounding box.
    a.inst(Instr::li(Reg::gpr(3), 7));
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(3), base: noise, disp: 0 });
    // Retarget -> slot 0 (dirty: hits the pointer cell).
    a.inst(Instr::Lda { rd: Reg::gpr(2), base: slots, disp: 0 });
    a.inst(Instr::Store { width: Width::Q, rs: Reg::gpr(2), base: ptr, disp: 0 });
    a.inst(Instr::Halt);
    a.data_label("ptr").quad(0);
    a.data_label("slots").space(32);
    a.data_label("noise").space(2048);
    a
}

#[test]
fn clean_prefix_scan_after_dirty_retarget() {
    let app = Application::new(kernel(), Layout::default());
    let prog = app.program().unwrap();
    let (ptr, slots) = (prog.symbol("ptr").unwrap(), prog.symbol("slots").unwrap());
    let cpus = vec![CpuConfig::default()];
    let members = vec![
        (
            BackendKind::DiseComparators,
            vec![Watchpoint::new(WatchExpr::Indirect { ptr, width: Width::Q })],
            cpus.clone(),
        ),
        (
            BackendKind::VirtualMemory,
            vec![Watchpoint::new(WatchExpr::Scalar { addr: slots + 8, width: Width::Q })],
            cpus.clone(),
        ),
    ];
    let run = |chunk: u64| {
        std::env::set_var("DISE_CHUNK", chunk.to_string());
        let mut task = SessionTask::observer(&app, members.clone());
        let out = loop {
            match task.poll(u64::MAX) {
                Step::Done(out) => break out,
                Step::Yielded(_) => {}
                Step::Blocked(r) => panic!("blocked: {r}"),
            }
        };
        out.into_observe().unwrap()
    };
    let reference = run(1);
    let chunked = run(64);
    assert_eq!(chunked, reference, "chunked fan-out diverged from per-record");
}
