//! Workspace-root convenience crate for the DISE debugging reproduction.
//!
//! Re-exports the member crates so examples and integration tests can
//! `use dise_repro::...` a single dependency. See the individual crates for
//! the real APIs:
//!
//! * [`dise_isa`] — the Alpha-like instruction set
//! * [`dise_asm`] — assembler and program images
//! * [`dise_mem`] — memory, caches, TLBs, page protection
//! * [`dise_cpu`] — the cycle-level out-of-order core and functional simulator
//! * [`dise_engine`] — the DISE pattern/replacement engine
//! * [`dise_debug`] — the debugger (the paper's contribution)
//! * [`dise_workloads`] — SPEC2000-like benchmark kernels

pub use dise_asm as asm;
pub use dise_cpu as cpu;
pub use dise_debug as debug;
pub use dise_engine as engine;
pub use dise_isa as isa;
pub use dise_mem as mem;
pub use dise_workloads as workloads;
